"""Tests for the unified telemetry API (instruments, snapshots, sinks, report).

Covers the redesign's contracts:

* the streaming histogram is O(buckets) memory for arbitrarily many
  observations and stays exact (legacy-identical) below the fold threshold;
* ``percentile`` edge cases (empty, single element, quantile 0.0/1.0,
  invalid quantiles) directly;
* ``TelemetrySnapshot.from_dict(s.to_dict()) == s`` including through the
  JSON-lines sink on disk;
* snapshot determinism: two serial runs of the same scenario produce
  byte-identical JSON-lines streams; wall-time (runtime) snapshots are
  checked structurally with tolerance, like ``test_runtime_live.py``;
* the ``report`` CLI renders identical tables from a ``--json`` artifact
  and from the result cache entry of the same run.
"""

from __future__ import annotations

import asyncio
import json
import math

import pytest

from repro.experiments import ExperimentConfig, ResultCache, get_scenario, run_experiment
from repro.experiments.cli import main as cli_main
from repro.registry import StackSpec, TelemetrySpec
from repro.runtime import MemoryTransport, NodeHost
from repro.sim.metrics import MetricsRegistry
from repro.telemetry import (
    Histogram,
    HistogramState,
    JsonlSink,
    MemorySink,
    PrometheusSink,
    Telemetry,
    TelemetrySnapshot,
    parse_sink_spec,
    percentile,
    read_snapshots_jsonl,
    render_prometheus,
)
from repro.telemetry.report import load_report_source, render_report, render_results


def _fast_config() -> ExperimentConfig:
    return get_scenario("smoke").config.with_overrides(
        name="telemetry-smoke", duration=4.0, drain_time=2.0
    )


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------


class TestStreamingHistogram:
    def test_exact_below_fold_threshold(self):
        histogram = Histogram()
        for value in [1.0, 2.0, 3.0, 4.0, 5.0]:
            histogram.observe(value)
        summary = histogram.summary()
        assert summary.count == 5
        assert summary.mean == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.p50 == 3.0
        assert summary.p95 == pytest.approx(4.8)

    def test_memory_is_bounded_for_one_million_observations(self):
        histogram = Histogram(fold_threshold=1024)
        for index in range(1_000_000):
            histogram.observe(float(index % 9973) + 0.5)
        # O(buckets): the raw buffer never exceeds the fold threshold and the
        # bucket dictionaries are bounded by the (shared) boundary table.
        assert histogram.count == 1_000_000
        assert histogram.pending_count < 1024
        assert histogram.bucket_count < 800
        state = histogram.state()
        assert state.count == 1_000_000
        assert len(state.positive) < 800

    def test_streaming_quantiles_track_exact_quantiles(self):
        import random

        rng = random.Random(7)
        values = [rng.expovariate(1 / 40.0) for _ in range(50_000)]
        histogram = Histogram(fold_threshold=512)
        for value in values:
            histogram.observe(value)
        ordered = sorted(values)
        summary = histogram.summary()
        assert summary.count == len(values)
        assert summary.mean == pytest.approx(sum(values) / len(values))
        assert summary.minimum == ordered[0]
        assert summary.maximum == ordered[-1]
        for quantile, estimate in ((0.50, summary.p50), (0.95, summary.p95), (0.99, summary.p99)):
            exact = percentile(ordered, quantile)
            assert estimate == pytest.approx(exact, rel=0.10)

    def test_negative_zero_and_positive_values(self):
        histogram = Histogram(fold_threshold=4)
        for value in [-10.0, -1.0, 0.0, 0.0, 1.0, 10.0, 100.0]:
            histogram.observe(value)
        state = histogram.state()
        assert state.count == 7
        assert state.minimum == -10.0
        assert state.maximum == 100.0
        assert state.zeros == 2
        assert state.negative and state.positive
        assert state.quantile(0.0) == -10.0
        assert state.quantile(1.0) == 100.0

    def test_taking_a_snapshot_does_not_change_later_summaries(self):
        # state() must be non-destructive: observability cannot alter what a
        # run reports afterwards.
        histogram = Histogram()
        for index in range(200):
            histogram.observe(1.0 + (index % 37) * 0.1)
        before = histogram.summary()
        state = histogram.state()  # what a snapshot captures
        assert state.count == 200
        after = histogram.summary()
        assert after == before
        assert histogram.pending_count == 200  # buffer untouched

    def test_reset_forgets_everything(self):
        histogram = Histogram(fold_threshold=2)
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        histogram.reset()
        assert histogram.count == 0
        assert histogram.summary().count == 0
        assert histogram.state() == HistogramState()


class TestPercentileEdgeCases:
    def test_empty_list_is_zero(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([], 0.0) == 0.0
        assert percentile([], 1.0) == 0.0

    def test_invalid_quantile_raises_even_for_empty_input(self):
        with pytest.raises(ValueError):
            percentile([], 1.5)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)

    def test_single_element_is_its_own_percentile(self):
        for quantile in (0.0, 0.25, 0.5, 1.0):
            assert percentile([7.0], quantile) == 7.0

    def test_extreme_quantiles_hit_min_and_max(self):
        ordered = [1.0, 2.0, 3.0, 4.0]
        assert percentile(ordered, 0.0) == 1.0
        assert percentile(ordered, 1.0) == 4.0
        assert percentile(ordered, 0.5) == 2.5


class TestTimer:
    def test_timer_records_elapsed_via_time_source(self):
        ticks = [10.0]
        telemetry = Telemetry(time_source=lambda: ticks[0])
        with telemetry.timer("span.duration", stage="fold"):
            ticks[0] = 10.25
        summary = telemetry.histogram_summary("span.duration", stage="fold")
        assert summary.count == 1
        assert summary.mean == pytest.approx(0.25)


# ---------------------------------------------------------------------------
# Facade and compatibility shim
# ---------------------------------------------------------------------------


class TestTelemetryFacade:
    def test_tagged_instruments_are_distinct(self):
        telemetry = Telemetry()
        telemetry.increment("ev", 2.0, node="a")
        telemetry.increment("ev", 3.0, node="b")
        telemetry.increment("ev", 5.0)
        assert telemetry.counter_value("ev", node="a") == 2.0
        assert telemetry.counter_value("ev") == 5.0
        assert telemetry.counter_total("ev") == 10.0
        assert telemetry.counters_by_tag("ev", "node") == {"a": 2.0, "b": 3.0}

    def test_histogram_summary_query_does_not_create_the_instrument(self):
        telemetry = Telemetry()
        summary = telemetry.histogram_summary("never.observed", node="a")
        assert summary.count == 0
        assert telemetry.names()["histograms"] == []
        # Snapshots of a store that was only queried stay empty.
        assert telemetry.snapshot(at=1.0).histograms == ()

    def test_reset_zeroes_prebound_instruments_in_place(self):
        telemetry = Telemetry()
        counter = telemetry.counter("ev", node="a")
        histogram = telemetry.histogram("lat")
        counter.increment(3.0)
        histogram.observe(1.5)
        telemetry.reset()
        assert telemetry.counter_value("ev", node="a") == 0.0
        assert telemetry.histogram_summary("lat").count == 0
        # Pre-bound writers keep feeding the same store after a reset.
        counter.increment()
        histogram.observe(2.0)
        assert telemetry.counter_value("ev", node="a") == 1.0
        assert telemetry.histogram_summary("lat").count == 1

    def test_metrics_registry_shares_the_telemetry_store(self):
        telemetry = Telemetry()
        registry = MetricsRegistry(telemetry=telemetry)
        registry.increment("sent", node="a", amount=4.0)
        telemetry.increment("sent", 1.0, node="a")
        assert registry.counter_value("sent", "a") == 5.0
        assert registry.per_node_counter("sent") == {"a": 5.0}
        registry.observe("lat", 0.5, node="a")
        assert telemetry.histogram_summary("lat", node="a").count == 1


# ---------------------------------------------------------------------------
# Snapshots and sinks
# ---------------------------------------------------------------------------


def _populated_telemetry() -> Telemetry:
    telemetry = Telemetry()
    telemetry.increment("rt.published", 42.0)
    telemetry.increment("gossip.messages_sent", 7.0, node="node-001")
    telemetry.set_gauge("fairness.ratio_jain", 0.875)
    telemetry.set_gauge("node.benefit", 3.0, node="node-001")
    for value in (0.01, 0.02, 0.5, 1.5, -2.0, 0.0):
        telemetry.observe("lat", value, node="node-001")
    return telemetry


class TestSnapshotRoundTrip:
    def test_from_dict_inverts_to_dict(self):
        snapshot = _populated_telemetry().snapshot(at=12.5)
        assert TelemetrySnapshot.from_dict(snapshot.to_dict()) == snapshot

    def test_round_trip_through_json_text(self):
        snapshot = _populated_telemetry().snapshot(at=12.5)
        text = json.dumps(snapshot.to_dict(), sort_keys=True)
        assert TelemetrySnapshot.from_dict(json.loads(text)) == snapshot

    def test_round_trip_through_jsonl_sink(self, tmp_path):
        telemetry = _populated_telemetry()
        path = tmp_path / "stream.jsonl"
        sink = JsonlSink(str(path))
        first = telemetry.snapshot(at=1.0)
        sink.emit(first)
        telemetry.increment("rt.published", 1.0)
        second = telemetry.snapshot(at=2.0)
        sink.emit(second)
        sink.close()
        restored = read_snapshots_jsonl(str(path))
        assert restored == [first, second]

    def test_snapshot_queries(self):
        snapshot = _populated_telemetry().snapshot(at=3.0)
        assert snapshot.counter_value("rt.published") == 42.0
        assert snapshot.counter_value("gossip.messages_sent", node="node-001") == 7.0
        assert snapshot.counter_total("gossip.messages_sent") == 7.0
        assert snapshot.gauge_value("fairness.ratio_jain") == 0.875
        assert snapshot.gauges_by_tag("node.benefit", "node") == {"node-001": 3.0}
        summary = snapshot.histogram_summary("lat", node="node-001")
        assert summary.count == 6
        assert summary.minimum == -2.0

    def test_csv_and_prometheus_sinks_write_files(self, tmp_path):
        telemetry = _populated_telemetry()
        csv_path = tmp_path / "out.csv"
        prom_path = tmp_path / "out.prom"
        csv_sink = parse_sink_spec(f"csv:{csv_path}")
        prom_sink = parse_sink_spec(f"prom:{prom_path}")
        snapshot = telemetry.snapshot(at=1.0)
        for sink in (csv_sink, prom_sink):
            sink.emit(snapshot)
            sink.close()
        header, row = csv_path.read_text().strip().splitlines()
        assert "counter:rt.published" in header
        assert "histogram:lat{node=node-001}.p95" in header
        assert len(row.split(",")) == len(header.split(","))
        exposition = prom_path.read_text()
        assert "# TYPE repro_rt_published counter" in exposition
        assert 'repro_gossip_messages_sent{node="node-001"} 7.0' in exposition
        assert 'repro_lat{node="node-001",quantile="0.5"}' in exposition
        assert exposition == render_prometheus(snapshot)

    def test_memory_sink_is_a_ring_buffer(self):
        telemetry = Telemetry()
        sink = MemorySink(capacity=2)
        for index in range(4):
            telemetry.increment("ticks")
            sink.emit(telemetry.snapshot(at=float(index)))
        assert len(sink.snapshots) == 2
        assert sink.latest.at == 3.0

    def test_parse_sink_spec_errors(self):
        with pytest.raises(ValueError, match="unknown telemetry sink kind"):
            parse_sink_spec("bogus:path")
        with pytest.raises(ValueError, match="needs a path"):
            parse_sink_spec("jsonl")
        assert isinstance(parse_sink_spec("memory:16"), MemorySink)
        assert isinstance(parse_sink_spec("prometheus:x.prom"), PrometheusSink)


# ---------------------------------------------------------------------------
# TelemetrySpec on StackSpec
# ---------------------------------------------------------------------------


class TestTelemetrySpec:
    def test_default_spec_serialises_without_telemetry_section(self):
        payload = StackSpec().to_dict()
        assert "telemetry" not in payload

    def test_telemetry_round_trips_through_dicts(self):
        spec = StackSpec().with_telemetry(("jsonl:out/m.jsonl",), period=2.5)
        payload = spec.to_dict()
        assert payload["telemetry"] == {"sinks": ["jsonl:out/m.jsonl"], "period": 2.5}
        assert StackSpec.from_dict(payload) == spec

    def test_telemetry_never_touches_cache_identity(self):
        from repro.experiments import config_hash

        base = get_scenario("smoke").spec
        wired = base.with_telemetry(("jsonl:out/m.jsonl",))
        assert config_hash(wired.to_config()) == config_hash(base.to_config())

    def test_build_sinks(self, tmp_path):
        spec = TelemetrySpec(sinks=(f"jsonl:{tmp_path}/a.jsonl", "memory"))
        sinks = spec.build_sinks()
        assert isinstance(sinks[0], JsonlSink)
        assert isinstance(sinks[1], MemorySink)

    def test_from_dict_rejects_string_sinks(self):
        from repro.registry import RegistryError

        with pytest.raises(RegistryError, match="list of sink specs"):
            StackSpec.from_dict({"telemetry": {"sinks": "jsonl:out.jsonl"}})
        with pytest.raises(RegistryError, match="unknown telemetry spec fields"):
            StackSpec.from_dict({"telemetry": {"sink": ["jsonl:out.jsonl"]}})

    def test_default_period_matches_shared_constant(self):
        from repro.telemetry import DEFAULT_SNAPSHOT_PERIOD

        assert TelemetrySpec().period == DEFAULT_SNAPSHOT_PERIOD

    def test_from_dict_rejects_bad_periods(self):
        from repro.registry import RegistryError

        for bad in (None, "fast"):
            with pytest.raises(RegistryError, match="must be a number"):
                StackSpec.from_dict({"telemetry": {"sinks": [], "period": bad}})
        for bad in (0, -1.5):
            with pytest.raises(RegistryError, match="must be positive"):
                StackSpec.from_dict({"telemetry": {"sinks": [], "period": bad}})


# ---------------------------------------------------------------------------
# Simulator integration: determinism and final snapshots
# ---------------------------------------------------------------------------


class TestSimulatorSnapshots:
    def test_no_duplicate_snapshot_when_run_ends_exactly_on_a_tick(self, tmp_path):
        # total_time = 6.0 is an exact multiple of the 2.0 period; the final
        # emit must not repeat the last tick when nothing changed after it.
        path = tmp_path / "ticks.jsonl"
        run_experiment(_fast_config(), snapshot_sinks=[f"jsonl:{path}"], snapshot_period=2.0)
        snapshots = read_snapshots_jsonl(str(path))
        ats = [snapshot.at for snapshot in snapshots]
        assert ats == sorted(set(ats)), "duplicate or out-of-order snapshot instants"

    def test_two_serial_runs_emit_byte_identical_jsonl_streams(self, tmp_path):
        config = _fast_config()
        streams = []
        for run in ("one", "two"):
            path = tmp_path / f"{run}.jsonl"
            run_experiment(
                config, snapshot_sinks=[f"jsonl:{path}"], snapshot_period=2.0
            )
            streams.append(path.read_bytes())
        assert streams[0] == streams[1]
        assert len(read_snapshots_jsonl(str(tmp_path / "one.jsonl"))) >= 3

    def test_result_totals_come_from_the_final_snapshot(self):
        from repro.analysis import latency_summary_from_snapshot

        result = run_experiment(_fast_config())
        snapshot = result.final_snapshot
        assert snapshot is not None
        assert snapshot.at == result.config.total_time
        assert result.total_messages == snapshot.gauge_value("sim.messages.total")
        assert result.total_deliveries == int(snapshot.gauge_value("sim.deliveries"))
        # The streamed latency histogram agrees with the delivery log, and
        # the analysis-layer constructor reads it under its default name.
        summary = latency_summary_from_snapshot(snapshot)
        assert summary.count == result.total_deliveries
        assert summary.maximum == result.reliability.max_latency

    def test_spec_built_stacks_record_node_level_instruments(self):
        # The registry build path threads the runner's telemetry into the
        # gossip nodes, so node-tagged counters and controller gauges appear
        # in every simulated run's snapshots — not just classic live hosts.
        result = run_experiment(
            _fast_config().with_overrides(system="fair-gossip", name="telemetry-fair-sim")
        )
        snapshot = result.final_snapshot
        assert snapshot.counter_total("gossip.rounds") > 0
        assert snapshot.counter_total("gossip.messages_sent") > 0
        assert snapshot.gauges_by_tag("controller.fanout", "node")
        assert snapshot.gauges_by_tag("benefit.own_rate", "node")

    def test_snapshots_do_not_perturb_the_simulation(self):
        plain = run_experiment(_fast_config())
        with_sinks = run_experiment(
            _fast_config(), snapshot_sinks=[MemorySink()], snapshot_period=1.0
        )
        assert plain.to_dict() == with_sinks.to_dict()

    def test_fair_gossip_run_exposes_controller_gauges_live(self):
        from repro.core.fair_gossip import FairGossipNode
        from repro.pubsub import TopicFilter

        telemetry = Telemetry()
        # Wire node-level telemetry through the live host path: the host
        # injects its telemetry into every node it builds, and fair-gossip
        # nodes publish their controller recommendations as gauges.
        async def scenario():
            host = NodeHost(
                MemoryTransport(),
                seed=3,
                time_scale=50.0,
                telemetry=telemetry,
                node_class=FairGossipNode,
            )
            node_ids = [f"node-{index:03d}" for index in range(8)]
            host.add_nodes(node_ids)
            for node_id in node_ids:
                host.subscribe(node_id, TopicFilter("t"))
            await host.start()
            for index in range(30):
                host.publish(f"node-{index % 8:03d}", topic="t")
                await asyncio.sleep(0.002)
            await asyncio.sleep(0.3)
            await host.stop()

        asyncio.run(scenario())
        names = telemetry.names()
        assert "gossip.messages_sent" in names["counters"]
        assert "gossip.rounds" in names["counters"]
        assert telemetry.counter_total("gossip.messages_sent") > 0
        assert telemetry.counter_total("gossip.deliveries") > 0
        # Controller and estimator gauges are node-tagged.
        fanouts = telemetry.gauges_by_tag("controller.fanout", "node")
        assert set(fanouts) == set(f"node-{index:03d}" for index in range(8))
        assert telemetry.gauges_by_tag("benefit.own_rate", "node")


class TestBiasDetectorTelemetry:
    def test_analyse_publishes_verdict_gauges(self):
        from repro.core.bias import BiasDetector, ForwardAudit

        audit = ForwardAudit()
        for _ in range(12):
            audit.observe("honest", new_events=5, total_events=5, receiver="r1")
            audit.observe("staler", new_events=0, total_events=5, receiver="r2")
        telemetry = Telemetry()
        report = BiasDetector(min_messages=10).analyse(audit, telemetry=telemetry)
        assert report.flagged_nodes() == ["staler"]
        assert telemetry.gauge_value("bias.flagged", node="staler") == 1.0
        assert telemetry.gauge_value("bias.flagged", node="honest") == 0.0
        assert telemetry.gauge_value("bias.useful_ratio", node="honest") == 1.0
        assert telemetry.gauge_value("bias.flagged_nodes") == 1.0


class TestControllerGauges:
    def test_gauges_report_base_values_before_any_adaptation(self):
        from repro.core.adaptive_fanout import AdaptiveFanoutController, FanoutSchedule
        from repro.core.adaptive_payload import AdaptivePayloadController, PayloadSchedule

        telemetry = Telemetry()
        AdaptiveFanoutController(
            schedule=FanoutSchedule(base_fanout=6, max_fanout=12),
            telemetry=telemetry,
            telemetry_tags={"node": "n1"},
        )
        AdaptivePayloadController(
            schedule=PayloadSchedule(base_payload=16),
            telemetry=telemetry,
            telemetry_tags={"node": "n1"},
        )
        # Snapshots taken before the first round (or in ablations that never
        # adapt a lever) must show the effective operating point, not 0.
        assert telemetry.gauge_value("controller.fanout", node="n1") == 6.0
        assert telemetry.gauge_value("controller.payload", node="n1") == 16.0


# ---------------------------------------------------------------------------
# Runtime (wall-time) snapshots — structural, with tolerance
# ---------------------------------------------------------------------------


class TestRuntimeSnapshots:
    def test_host_emits_periodic_and_final_snapshots(self):
        sink = MemorySink()

        async def scenario():
            host = NodeHost(
                MemoryTransport(),
                seed=11,
                time_scale=50.0,
                snapshot_sinks=[sink],
                snapshot_period=5.0,  # 0.1s of real time at scale 50
            )
            host.add_nodes([f"node-{index:03d}" for index in range(6)])
            await host.start()
            for index in range(40):
                host.publish(f"node-{index % 6:03d}", topic="t")
                await asyncio.sleep(0.005)
            await host.stop()

        asyncio.run(scenario())
        snapshots = sink.snapshots
        # Wall-time cadence is not exact; require at least the final snapshot
        # plus one periodic tick, and monotonically increasing timestamps.
        assert len(snapshots) >= 2
        ats = [snapshot.at for snapshot in snapshots]
        assert ats == sorted(ats)
        final = snapshots[-1]
        assert final.counter_value("rt.published") == 40.0
        assert final.gauge_value("rt.nodes") == 6.0
        assert 0.0 <= final.gauge_value("fairness.ratio_jain") <= 1.0


# ---------------------------------------------------------------------------
# The report surface
# ---------------------------------------------------------------------------


class TestReport:
    def test_report_identical_for_json_artifact_and_cache_entry(self, tmp_path):
        config = _fast_config().with_overrides(name="telemetry-report")
        artifact = tmp_path / "results.json"
        cache_dir = tmp_path / "cache"
        code = cli_main(
            [
                "run",
                "smoke",
                "--set",
                "duration=4",
                "--set",
                "drain_time=2",
                "--set",
                "name=telemetry-report",
                "--cache-dir",
                str(cache_dir),
                "--json",
                str(artifact),
            ]
        )
        assert code == 0
        cache_files = list(cache_dir.glob("*/*.json"))
        assert len(cache_files) == 1
        from_artifact = load_report_source(str(artifact))
        from_cache = load_report_source(str(cache_files[0]))
        assert from_artifact.kind == from_cache.kind == "results"
        assert render_report(from_artifact) == render_report(from_cache)
        del config  # identity documented by the name override above

    def test_report_cli_on_snapshot_stream(self, tmp_path, capsys):
        stream = tmp_path / "metrics.jsonl"
        run_experiment(
            _fast_config(), snapshot_sinks=[f"jsonl:{stream}"], snapshot_period=2.0
        )
        assert cli_main(["report", str(stream)]) == 0
        out = capsys.readouterr().out
        assert "telemetry time series" in out
        assert "sim.delivery_latency" in out
        assert "fairness at t=" in out

    def test_report_cli_rejects_unknown_artifacts(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"unexpected": true}')
        with pytest.raises(SystemExit, match="unrecognised shape"):
            cli_main(["report", str(bogus)])
        with pytest.raises(SystemExit, match="does not exist"):
            cli_main(["report", str(tmp_path / "missing.json")])

    def test_render_results_is_deterministic(self, tmp_path):
        result = run_experiment(_fast_config())
        assert render_results([result]) == render_results([result])

    def test_run_cli_rejects_bad_telemetry_specs_cleanly(self):
        with pytest.raises(SystemExit, match="unknown telemetry sink kind"):
            cli_main(["run", "smoke", "--no-cache", "--telemetry", "bogus:x"])
        with pytest.raises(SystemExit, match="needs a path"):
            cli_main(["run", "smoke", "--no-cache", "--telemetry", "jsonl"])
        with pytest.raises(SystemExit, match="must be positive"):
            cli_main(
                [
                    "run",
                    "smoke",
                    "--no-cache",
                    "--telemetry",
                    "memory",
                    "--telemetry-period",
                    "0",
                ]
            )
        with pytest.raises(SystemExit, match="no effect without --telemetry"):
            cli_main(["run", "smoke", "--no-cache", "--telemetry-period", "2"])

    def test_snapshot_fairness_table_caps_zero_benefit_contributors(self):
        from repro.analysis import fairness_table_from_snapshot
        from repro.core.fairness import _ZERO_BENEFIT_RATIO_CAP

        telemetry = Telemetry()
        telemetry.set_gauge("node.contribution", 10.0, node="exploited")
        telemetry.set_gauge("node.benefit", 0.0, node="exploited")
        telemetry.set_gauge("node.contribution", 4.0, node="balanced")
        telemetry.set_gauge("node.benefit", 2.0, node="balanced")
        table = fairness_table_from_snapshot(telemetry.snapshot(at=1.0))
        rows = {row["node"]: row for row in table.rows}
        # Same semantics as the end-of-run summary: an exploited contributor
        # gets the finite cap, not a ratio of 0.
        assert rows["exploited"]["ratio"] == _ZERO_BENEFIT_RATIO_CAP
        assert rows["balanced"]["ratio"] == 2.0
