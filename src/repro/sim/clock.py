"""Clocks: the time interface shared by the simulator and the live runtime.

Time is a float measured in abstract "time units"; gossip protocols typically
use one unit per gossip round, while the network model uses fractions of a
unit for per-link latency.  :class:`Clock` fixes the one property every
consumer of time relies on (``now``), so the same protocol code runs against
the simulator's :class:`VirtualClock` (advanced only by the scheduler) and
the runtime's :class:`repro.runtime.clock.WallClock` (advanced by the
operating system).
"""

from __future__ import annotations

__all__ = ["Clock", "VirtualClock"]


def _validated_start(start: float) -> float:
    """Validate a clock start time; shared by ``__init__`` and ``reset``."""
    if start < 0:
        raise ValueError("start time must be non-negative")
    return float(start)


class Clock:
    """Monotonically increasing time source measured in time units.

    The contract is minimal on purpose: protocol code only ever *reads* the
    clock; who advances it (the discrete-event scheduler or the OS) is an
    implementation detail of the concrete clock.
    """

    @property
    def now(self) -> float:
        """Current time in time units; never decreases."""
        raise NotImplementedError


class VirtualClock(Clock):
    """Monotonically increasing simulated time."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = _validated_start(start)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        Raises
        ------
        ValueError
            If ``timestamp`` is earlier than the current time; the simulator
            never travels backwards.
        """
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now}, requested={timestamp}"
            )
        self._now = float(timestamp)

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock, typically between independent simulation runs."""
        self._now = _validated_start(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now!r})"
