"""Message-passing network model.

The network sits between processes and the event engine.  Sending a message
costs the sender one "send" (counted towards its contribution by the
accounting layer), takes a latency drawn from the configured latency model,
and may be lost according to the loss model.  Partitions can be installed to
cut connectivity between groups of nodes, which is how the failure injector
models transient network splits.

The model is intentionally simple — per-message independent latency and
loss — because the paper's claims are about message *counts* and *delivery*,
not about queueing effects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional, Set, Tuple

from .engine import Simulator

__all__ = [
    "Message",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "FaultInjectionSurface",
    "Network",
    "NetworkStats",
    "validate_link_perturbation",
]


def validate_link_perturbation(
    extra_latency: float, loss_rate: float, rng: Optional[random.Random]
) -> None:
    """Validate one link degradation triple (shared by every actuator).

    Both the global :meth:`FaultInjectionSurface.set_perturbation` and the
    per-link :class:`~repro.topology.geo.GeoLinkProfile` route through this
    one check, so "what is a legal latency/loss pair" has a single answer.
    """
    if extra_latency < 0:
        raise ValueError("extra_latency must be non-negative")
    if not 0.0 <= loss_rate <= 1.0:
        raise ValueError("loss_rate must be within [0, 1]")
    if loss_rate > 0 and rng is None:
        raise ValueError("loss perturbation requires an rng stream")


class FaultInjectionSurface:
    """Partition and perturbation state shared by both network fabrics.

    The fault layer's contract is that one
    :class:`~repro.faults.plan.FaultPlan` means the same physics on either
    substrate, so the actuator surface — partition maps, link-level
    latency/loss perturbation, and their validation — lives here once and
    is inherited by :class:`Network` (discrete-event) and
    :class:`~repro.runtime.network.RuntimeNetwork` (live).  Subclasses call
    :meth:`_init_fault_state` in ``__init__`` and consult
    ``_same_partition`` / ``_perturb_*`` on their send/deliver paths.
    """

    def _init_fault_state(self) -> None:
        self._partitions: Dict[str, int] = {}
        self._perturb_latency = 0.0
        self._perturb_loss = 0.0
        self._perturb_rng: Optional[random.Random] = None
        self._link_profile = None

    # ----------------------------------------------------------- partitions

    def set_partition(self, assignment: Dict[str, int]) -> None:
        """Install a partition map; nodes in different groups cannot talk.

        Nodes absent from the map are treated as belonging to group 0.
        """
        self._partitions = dict(assignment)

    def clear_partition(self) -> None:
        """Heal all partitions."""
        self._partitions = {}

    def _same_partition(self, a: str, b: str) -> bool:
        if not self._partitions:
            return True
        return self._partitions.get(a, 0) == self._partitions.get(b, 0)

    # --------------------------------------------------------- perturbation

    def set_perturbation(
        self,
        extra_latency: float = 0.0,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        """Degrade every link: add latency and/or extra Bernoulli loss.

        Used by the fault layer to model congested or flaky periods.  Loss
        draws come from the caller-supplied ``rng`` (a named fault stream),
        never from the streams protocol code uses, so installing a
        perturbation leaves every pre-existing draw sequence untouched —
        and an inactive perturbation draws nothing at all.  Latency is in
        time units in both worlds (the live scheduler's wall clock maps
        them onto real seconds).
        """
        validate_link_perturbation(extra_latency, loss_rate, rng)
        self._perturb_latency = float(extra_latency)
        self._perturb_loss = float(loss_rate)
        self._perturb_rng = rng

    def clear_perturbation(self) -> None:
        """Restore the unperturbed link behaviour.

        Leaves any installed link profile (a run's *geography*) in place:
        the fault controller clears perturbations on teardown, and that
        must not strip the topology's physics.
        """
        self._perturb_latency = 0.0
        self._perturb_loss = 0.0
        self._perturb_rng = None

    # ------------------------------------------------------- per-link profile

    def set_link_profile(self, profile) -> None:
        """Install per-link latency/loss effects (the topology geo matrix).

        ``profile`` is duck-typed: ``effects(sender, recipient)`` returning
        ``(extra_latency, loss_rate)`` plus an ``rng`` attribute for loss
        draws (see :class:`~repro.topology.geo.GeoLinkProfile`, which runs
        every resolved link through :func:`validate_link_perturbation` —
        the same code path the global actuator uses).  Unlike the global
        perturbation this is installed at build time and survives fault
        windows; ``None`` while off, so the flat layout costs nothing.
        """
        self._link_profile = profile

    def clear_link_profile(self) -> None:
        """Remove the per-link profile (back to flat physics)."""
        self._link_profile = None


@dataclass
class Message:
    """A message in flight between two processes.

    Attributes
    ----------
    sender / recipient:
        Node identifiers.
    kind:
        Protocol-level message type (``"gossip"``, ``"subscribe"``,
        ``"shuffle"`` ...), used by traces and by per-kind statistics.
    payload:
        Arbitrary protocol data; the network never inspects it.
    size:
        Abstract message size (for example the number of events carried in a
        gossip message); used by the fairness accounting to weight
        contribution by payload, per Figure 3 of the paper.
    sent_at:
        Simulated time at which the message was handed to the network.
    trace:
        Optional tuple of :class:`~repro.tracing.context.TraceContext`
        entries, one per traced event carried by the message.  ``None`` on
        every untraced message (the overwhelming default), so the field
        costs nothing unless a run opted into dissemination tracing.
    """

    sender: str
    recipient: str
    kind: str
    payload: Any = None
    size: int = 1
    sent_at: float = 0.0
    trace: Optional[Tuple] = None


class LatencyModel:
    """Base class for per-message latency models."""

    def sample(self, rng: random.Random, sender: str, recipient: str) -> float:
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``latency`` time units."""

    def __init__(self, latency: float = 0.1) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.latency = latency

    def sample(self, rng: random.Random, sender: str, recipient: str) -> float:
        return self.latency


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.05, high: float = 0.15) -> None:
        if low < 0 or high < low:
            raise ValueError("require 0 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random, sender: str, recipient: str) -> float:
        return rng.uniform(self.low, self.high)


class LogNormalLatency(LatencyModel):
    """Heavy-tailed latency, a common fit for wide-area round-trip times."""

    def __init__(self, median: float = 0.1, sigma: float = 0.5, cap: float = 5.0) -> None:
        if median <= 0 or sigma < 0 or cap <= 0:
            raise ValueError("median and cap must be positive, sigma non-negative")
        import math

        self._mu = math.log(median)
        self.sigma = sigma
        self.cap = cap

    def sample(self, rng: random.Random, sender: str, recipient: str) -> float:
        return min(rng.lognormvariate(self._mu, self.sigma), self.cap)


class LossModel:
    """Base class for message-loss models."""

    def is_lost(self, rng: random.Random, message: Message) -> bool:
        raise NotImplementedError


class NoLoss(LossModel):
    """Reliable network: no message is ever dropped."""

    def is_lost(self, rng: random.Random, message: Message) -> bool:
        return False


class BernoulliLoss(LossModel):
    """Each message is independently lost with probability ``rate``."""

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("loss rate must be within [0, 1]")
        self.rate = rate

    def is_lost(self, rng: random.Random, message: Message) -> bool:
        if self.rate == 0.0:
            return False
        return rng.random() < self.rate


@dataclass
class NetworkStats:
    """Aggregate counters maintained by the network."""

    sent: int = 0
    delivered: int = 0
    lost: int = 0
    dropped_dead: int = 0
    dropped_partition: int = 0
    bytes_sent: int = 0
    sent_by_kind: Dict[str, int] = field(default_factory=dict)

    def record_sent(self, message: Message) -> None:
        self.sent += 1
        self.bytes_sent += max(message.size, 0)
        self.sent_by_kind[message.kind] = self.sent_by_kind.get(message.kind, 0) + 1


class Network(FaultInjectionSurface):
    """Connects registered processes through the simulator's event queue.

    Parameters
    ----------
    simulator:
        The discrete-event engine that drives deliveries.
    latency_model / loss_model:
        Pluggable models; default to a small constant latency and no loss.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency_model: Optional[LatencyModel] = None,
        loss_model: Optional[LossModel] = None,
    ) -> None:
        self._simulator = simulator
        self._latency = latency_model or ConstantLatency(0.1)
        self._loss = loss_model or NoLoss()
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        self._alive: Set[str] = set()
        self.stats = NetworkStats()
        self._delivery_hooks: list[Callable[[Message, float], None]] = []
        #: Optional :class:`~repro.tracing.tracer.Tracer` (duck-typed so the
        #: sim package stays import-independent of the tracing package);
        #: when set, dropped traced frames emit ``drop`` spans.
        self.tracer = None
        self._init_fault_state()

    # --------------------------------------------------------------- wiring

    @property
    def simulator(self) -> Simulator:
        """The engine this network schedules deliveries on."""
        return self._simulator

    def register(self, node_id: str, handler: Callable[[Message], None]) -> None:
        """Attach a process; it becomes reachable and alive."""
        self._handlers[node_id] = handler
        self._alive.add(node_id)

    def unregister(self, node_id: str) -> None:
        """Detach a process completely (used when a node leaves for good)."""
        self._handlers.pop(node_id, None)
        self._alive.discard(node_id)
        self._partitions.pop(node_id, None)

    def set_alive(self, node_id: str, alive: bool) -> None:
        """Mark a registered process up or down without unregistering it."""
        if node_id not in self._handlers:
            raise KeyError(f"unknown node {node_id!r}")
        if alive:
            self._alive.add(node_id)
        else:
            self._alive.discard(node_id)

    def is_alive(self, node_id: str) -> bool:
        """Whether the node is currently able to receive messages."""
        return node_id in self._alive

    def known_nodes(self) -> Set[str]:
        """All registered node identifiers (alive or not)."""
        return set(self._handlers)

    def alive_nodes(self) -> Set[str]:
        """Identifiers of nodes currently alive."""
        return set(self._alive)

    def add_delivery_hook(self, hook: Callable[[Message, float], None]) -> None:
        """Register a callback invoked as ``hook(message, delivered_at)``."""
        self._delivery_hooks.append(hook)

    # --------------------------------------------------------------- sending

    def send(
        self,
        sender: str,
        recipient: str,
        kind: str,
        payload: Any = None,
        size: int = 1,
        trace: Optional[Tuple] = None,
    ) -> Message:
        """Send a message; delivery (if any) is scheduled on the engine.

        The message object is returned so callers (for example the trace
        recorder) can correlate sends with deliveries.  ``trace`` carries
        the sender's trace contexts (one per traced event on the message);
        it does not affect physics — drops and latency are decided exactly
        as for an untraced message.
        """
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            payload=payload,
            size=size,
            sent_at=self._simulator.now,
            trace=trace,
        )
        self.stats.record_sent(message)

        rng = self._simulator.rng.stream("network")
        if recipient not in self._handlers:
            self.stats.dropped_dead += 1
            self._trace_drop(message, "dead")
            return message
        if not self._same_partition(sender, recipient):
            self.stats.dropped_partition += 1
            self._trace_drop(message, "partition")
            return message
        if self._loss.is_lost(rng, message):
            self.stats.lost += 1
            self._trace_drop(message, "lost")
            return message
        if self._perturb_loss > 0.0 and self._perturb_rng.random() < self._perturb_loss:
            self.stats.lost += 1
            self._trace_drop(message, "lost")
            return message
        extra_latency = self._perturb_latency
        if self._link_profile is not None:
            link_latency, link_loss = self._link_profile.effects(sender, recipient)
            if link_loss > 0.0 and self._link_profile.rng.random() < link_loss:
                self.stats.lost += 1
                self._trace_drop(message, "lost")
                return message
            extra_latency += link_latency

        latency = self._latency.sample(rng, sender, recipient) + extra_latency
        self._simulator.schedule(
            latency, lambda: self._deliver(message), label=f"deliver:{kind}"
        )
        return message

    def broadcast(
        self,
        sender: str,
        recipients: Iterable[str],
        kind: str,
        payload: Any = None,
        size: int = 1,
        trace: Optional[Tuple] = None,
    ) -> Tuple[Message, ...]:
        """Send the same payload to several recipients (one message each)."""
        return tuple(
            self.send(sender, recipient, kind, payload=payload, size=size, trace=trace)
            for recipient in recipients
        )

    def _trace_drop(self, message: Message, reason: str) -> None:
        if message.trace and self.tracer is not None:
            self.tracer.record_drop(message, reason)

    def _deliver(self, message: Message) -> None:
        handler = self._handlers.get(message.recipient)
        if handler is None or message.recipient not in self._alive:
            self.stats.dropped_dead += 1
            self._trace_drop(message, "dead")
            return
        self.stats.delivered += 1
        now = self._simulator.now
        for hook in self._delivery_hooks:
            hook(message, now)
        handler(message)
