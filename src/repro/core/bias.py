"""Bias and selfishness detection (challenge 6 of §5.2).

The paper asks: *"Can we ensure that a peer does not artificially grow its
contribution by biasing the selection of peers (i.e., biasing the fanout) or
the selection of events (i.e., biasing the gossip message size)?"*

A peer can game a contribution-counting fairness scheme by sending many
messages that are *useless*: gossiping stale events everybody already has, or
always gossiping to the same colluding peers.  Both inflate the sender's
message count without helping dissemination.

The defence implemented here is receiver-side auditing:

* every receiver reports, per sender, how many of the events in each gossip
  message were *new* to it (:class:`ForwardAudit` — in a deployment these
  reports would be gossiped or sampled; in the simulator they are collected
  centrally, which is equivalent for evaluating the detector);
* :class:`BiasDetector` compares each sender's *useful-forward ratio* and
  target diversity against the population and flags outliers;
* :class:`SelfishGossipNode` is the attacker model used by benchmark C5 —
  it biases event selection towards stale events and peer selection towards
  a fixed set of colluders, exactly the two behaviours named by the paper.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..gossip.push import PushGossipNode
from .fairness import gini_coefficient

__all__ = ["ForwardAudit", "BiasFinding", "BiasReport", "BiasDetector", "SelfishGossipNode"]


@dataclass
class _SenderRecord:
    messages: int = 0
    events_total: int = 0
    events_new: int = 0
    recipients: Dict[str, int] = field(default_factory=dict)


class ForwardAudit:
    """Receiver-side record of how useful each sender's forwards were."""

    def __init__(self) -> None:
        self._by_sender: Dict[str, _SenderRecord] = defaultdict(_SenderRecord)
        self._current_receiver: Optional[str] = None

    def observe(self, sender: str, new_events: int, total_events: int, receiver: str = "") -> None:
        """Record one received gossip message from ``sender``.

        ``new_events`` is how many of the carried events the receiver had not
        seen before; ``total_events`` is the message payload size.
        """
        if total_events <= 0:
            return
        record = self._by_sender[sender]
        record.messages += 1
        record.events_total += total_events
        record.events_new += min(new_events, total_events)
        if receiver:
            record.recipients[receiver] = record.recipients.get(receiver, 0) + 1

    def useful_ratio(self, sender: str) -> float:
        """Fraction of the sender's forwarded events that were new to receivers."""
        record = self._by_sender.get(sender)
        if record is None or record.events_total == 0:
            return 1.0
        return record.events_new / record.events_total

    def recipient_concentration(self, sender: str) -> float:
        """Gini coefficient of the sender's messages over distinct recipients.

        0 means the sender spreads its messages evenly (unbiased target
        selection); values near 1 mean nearly all messages went to a handful
        of recipients, the signature of collusion-style target bias.  Senders
        observed by fewer than two distinct recipients return 0 (no evidence).
        """
        record = self._by_sender.get(sender)
        if record is None or len(record.recipients) < 2:
            return 0.0
        return gini_coefficient(record.recipients.values())

    def senders(self) -> List[str]:
        """All senders with at least one audited message, sorted."""
        return sorted(self._by_sender)

    def message_count(self, sender: str) -> int:
        """Number of audited messages from ``sender``."""
        record = self._by_sender.get(sender)
        return record.messages if record is not None else 0


@dataclass(frozen=True)
class BiasFinding:
    """Verdict for a single node."""

    node_id: str
    useful_ratio: float
    recipient_concentration: float
    messages_audited: int
    flagged: bool
    reasons: Tuple[str, ...] = ()


@dataclass(frozen=True)
class BiasReport:
    """Detector output over the whole population."""

    findings: Dict[str, BiasFinding]
    median_useful_ratio: float

    def flagged_nodes(self) -> List[str]:
        """Ids of nodes the detector flagged, sorted."""
        return sorted(node_id for node_id, finding in self.findings.items() if finding.flagged)

    def precision_recall(self, true_selfish: Iterable[str]) -> Tuple[float, float]:
        """Detector precision and recall against ground truth (for benchmarks)."""
        truth = set(true_selfish)
        flagged = set(self.flagged_nodes())
        if not flagged:
            precision = 1.0 if not truth else 0.0
        else:
            precision = len(flagged & truth) / len(flagged)
        recall = 1.0 if not truth else len(flagged & truth) / len(truth)
        return precision, recall


class BiasDetector:
    """Flags nodes whose forwarding behaviour looks self-serving.

    Parameters
    ----------
    useful_ratio_threshold:
        A node is suspicious when its useful-forward ratio falls below this
        fraction of the population median.
    concentration_threshold:
        A node is suspicious when the Gini concentration of its recipients
        exceeds this absolute value.
    min_messages:
        Nodes with fewer audited messages than this are never flagged (not
        enough evidence).
    """

    def __init__(
        self,
        useful_ratio_threshold: float = 0.5,
        concentration_threshold: float = 0.6,
        min_messages: int = 10,
    ) -> None:
        if not 0.0 < useful_ratio_threshold <= 1.0:
            raise ValueError("useful_ratio_threshold must be within (0, 1]")
        if not 0.0 <= concentration_threshold <= 1.0:
            raise ValueError("concentration_threshold must be within [0, 1]")
        self.useful_ratio_threshold = useful_ratio_threshold
        self.concentration_threshold = concentration_threshold
        self.min_messages = min_messages

    def analyse(self, audit: ForwardAudit, telemetry=None) -> BiasReport:
        """Run the detector over an audit and return per-node findings.

        With ``telemetry`` the verdicts are also published as node-tagged
        gauges (``bias.useful_ratio``, ``bias.flagged``) plus the aggregate
        ``bias.flagged_nodes``, so periodic snapshots show the detector's
        view evolving during a run.
        """
        senders = audit.senders()
        ratios = sorted(audit.useful_ratio(sender) for sender in senders)
        median_ratio = ratios[len(ratios) // 2] if ratios else 1.0
        findings: Dict[str, BiasFinding] = {}
        for sender in senders:
            useful = audit.useful_ratio(sender)
            concentration = audit.recipient_concentration(sender)
            messages = audit.message_count(sender)
            reasons: List[str] = []
            if messages >= self.min_messages:
                if median_ratio > 0 and useful < self.useful_ratio_threshold * median_ratio:
                    reasons.append("stale-event bias")
                if concentration > self.concentration_threshold:
                    reasons.append("target-selection bias")
            findings[sender] = BiasFinding(
                node_id=sender,
                useful_ratio=useful,
                recipient_concentration=concentration,
                messages_audited=messages,
                flagged=bool(reasons),
                reasons=tuple(reasons),
            )
        report = BiasReport(findings=findings, median_useful_ratio=median_ratio)
        if telemetry is not None:
            telemetry.set_gauge("bias.median_useful_ratio", median_ratio)
            telemetry.set_gauge("bias.flagged_nodes", len(report.flagged_nodes()))
            for sender in senders:
                finding = findings[sender]
                telemetry.set_gauge("bias.useful_ratio", finding.useful_ratio, node=sender)
                telemetry.set_gauge(
                    "bias.flagged", 1.0 if finding.flagged else 0.0, node=sender
                )
        return report


class SelfishGossipNode(PushGossipNode):
    """Attacker model: inflates contribution without helping dissemination.

    The node always forwards its *stalest* buffered events (which most peers
    already have) and, when it has colluders configured, sends most of its
    gossip messages to them instead of to uniformly chosen peers.  Its message
    count — the naive contribution measure — looks as good as or better than
    an honest node's, which is precisely the attack the paper warns about.
    """

    def __init__(self, *args, colluders: Sequence[str] = (), collusion_bias: float = 0.8, **kwargs) -> None:
        kwargs.setdefault("selection_strategy", "stale-first")
        super().__init__(*args, **kwargs)
        if not 0.0 <= collusion_bias <= 1.0:
            raise ValueError("collusion_bias must be within [0, 1]")
        self.colluders = [peer for peer in colluders if peer != self.node_id]
        self.collusion_bias = collusion_bias

    def select_participants(self, fanout: int, rng) -> List[str]:
        if not self.colluders:
            return super().select_participants(fanout, rng)
        biased_quota = int(round(fanout * self.collusion_bias))
        biased = self.colluders[:biased_quota]
        remaining = fanout - len(biased)
        uniform = (
            super().select_participants(remaining + len(biased), rng) if remaining > 0 else []
        )
        filler = [peer for peer in uniform if peer not in biased][:remaining]
        return biased + filler
