"""Topics and topic hierarchies.

Topic-based selection (§2, §5.1) associates each event with a single topic.
Data-aware multicast (§4.2) additionally organises topics into a hierarchy
where subscribing to a *supertopic* implies interest in all its descendants;
the :class:`TopicHierarchy` here provides that structure for the
``repro.damulticast`` baseline and for hierarchical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

__all__ = ["Topic", "TopicHierarchy", "topic_path"]

#: Separator used in hierarchical topic names, e.g. ``"sports/football/uefa"``.
TOPIC_SEPARATOR = "/"


def topic_path(name: str) -> List[str]:
    """Split a hierarchical topic name into its path components.

    ``"sports/football"`` becomes ``["sports", "sports/football"]`` — every
    prefix is itself a topic, which is the property data-aware multicast uses
    to route through supertopics.
    """
    parts = [part for part in name.split(TOPIC_SEPARATOR) if part]
    if not parts:
        raise ValueError("topic name must contain at least one non-empty component")
    prefixes: List[str] = []
    for index in range(len(parts)):
        prefixes.append(TOPIC_SEPARATOR.join(parts[: index + 1]))
    return prefixes


@dataclass(frozen=True)
class Topic:
    """A named topic.

    Equality and hashing are by name, so topics can be freely re-created at
    different call sites without identity bookkeeping.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("topic name must be non-empty")

    @property
    def parent_name(self) -> Optional[str]:
        """Name of the parent topic in the hierarchy, or ``None`` at the root."""
        if TOPIC_SEPARATOR not in self.name:
            return None
        return self.name.rsplit(TOPIC_SEPARATOR, 1)[0]

    @property
    def depth(self) -> int:
        """1 for a root topic, 2 for its children, and so on."""
        return self.name.count(TOPIC_SEPARATOR) + 1

    def is_ancestor_of(self, other: "Topic") -> bool:
        """Whether this topic is a strict ancestor of ``other``."""
        return other.name.startswith(self.name + TOPIC_SEPARATOR)

    def __str__(self) -> str:
        return self.name


class TopicHierarchy:
    """A forest of topics linked by the ``/`` naming convention.

    Adding ``"a/b/c"`` implicitly adds ``"a"`` and ``"a/b"``.  The hierarchy
    answers ancestor/descendant queries and enumerates topics in
    deterministic (sorted) order so experiments are reproducible.
    """

    def __init__(self, names: Optional[Iterable[str]] = None) -> None:
        self._topics: Dict[str, Topic] = {}
        self._children: Dict[str, Set[str]] = {}
        for name in names or ():
            self.add(name)

    def add(self, name: str) -> Topic:
        """Add a topic (and all its ancestors); returns the leaf topic."""
        leaf: Optional[Topic] = None
        for prefix in topic_path(name):
            if prefix not in self._topics:
                topic = Topic(prefix)
                self._topics[prefix] = topic
                parent = topic.parent_name
                if parent is not None:
                    self._children.setdefault(parent, set()).add(prefix)
            leaf = self._topics[prefix]
        assert leaf is not None  # topic_path guarantees at least one component
        return leaf

    def __contains__(self, name: str) -> bool:
        return name in self._topics

    def __len__(self) -> int:
        return len(self._topics)

    def __iter__(self) -> Iterator[Topic]:
        for name in sorted(self._topics):
            yield self._topics[name]

    def get(self, name: str) -> Topic:
        """Return the topic with the given name (KeyError if absent)."""
        return self._topics[name]

    def names(self) -> List[str]:
        """All topic names, sorted."""
        return sorted(self._topics)

    def roots(self) -> List[Topic]:
        """Topics without a parent, sorted by name."""
        return [topic for name, topic in sorted(self._topics.items()) if topic.parent_name is None]

    def leaves(self) -> List[Topic]:
        """Topics without children, sorted by name."""
        return [
            topic
            for name, topic in sorted(self._topics.items())
            if not self._children.get(name)
        ]

    def children(self, name: str) -> List[Topic]:
        """Direct children of a topic, sorted by name."""
        return [self._topics[child] for child in sorted(self._children.get(name, ()))]

    def ancestors(self, name: str) -> List[Topic]:
        """Ancestors of a topic from root to direct parent."""
        path = topic_path(name)
        return [self._topics[prefix] for prefix in path[:-1] if prefix in self._topics]

    def descendants(self, name: str) -> List[Topic]:
        """All strict descendants of a topic, sorted by name."""
        result: List[Topic] = []
        stack = sorted(self._children.get(name, ()))
        while stack:
            current = stack.pop(0)
            result.append(self._topics[current])
            stack = sorted(self._children.get(current, ())) + stack
        return result

    def supertopic_of(self, names: Sequence[str]) -> Optional[Topic]:
        """Deepest common ancestor of several topics, if any."""
        if not names:
            return None
        paths = [topic_path(name) for name in names]
        common: Optional[str] = None
        for level in range(min(len(path) for path in paths)):
            candidates = {path[level] for path in paths}
            if len(candidates) == 1:
                common = candidates.pop()
            else:
                break
        if common is None or common not in self._topics:
            return None
        return self._topics[common]
