"""Experiment C3 (§5.2 challenges 3-4): minimum fanout / payload requirements.

How low can the fair protocol push the contribution of low-benefit nodes
before reliability collapses?  Sweeps the fanout floor (min_fanout) of the
fair protocol under a skewed-interest workload.  Expected shape: reliability
stays near 1 for floors >= 1 with an adequate base fanout, and collapses when
the floor (and base) are driven to 0 — i.e. the fairness levers have a hard
lower bound set by epidemic connectivity, exactly the requirement the paper
asks about.
"""

from __future__ import annotations

from common import BASE_CONFIG, attach_extra_info, print_results, run_configs


def run_floor_sweep():
    base = BASE_CONFIG.with_overrides(
        name="c3",
        system="fair-gossip",
        nodes=96,
        duration=20.0,
        drain_time=12.0,
        interest_model="zipf",
    )
    # (min_fanout, base_fanout): driving both to the bottom removes the
    # epidemic safety margin; a floor of 1 with a sensible base keeps it.
    configs = [
        base.with_overrides(
            min_fanout=min_fanout,
            fanout=base_fanout,
            max_fanout=max_fanout,
            name=f"c3/floor={min_fanout},base={base_fanout}",
        )
        for min_fanout, base_fanout, max_fanout in [(0, 1, 2), (1, 2, 6), (1, 4, 12), (2, 4, 12)]
    ]
    return run_configs(configs)


def test_c3_minimum_fanout_requirement(benchmark):
    results = benchmark.pedantic(run_floor_sweep, rounds=1, iterations=1)
    print_results("C3 — reliability vs the fair protocol's fanout floor", results)
    attach_extra_info(benchmark, results)
    ratios = [result.reliability.delivery_ratio for result in results]
    # With floor>=1 and a sensible base fanout the protocol stays reliable...
    assert ratios[2] > 0.97
    assert ratios[3] > 0.97
    # ...and the most aggressive setting is measurably worse than the safest.
    assert ratios[0] < ratios[3]
