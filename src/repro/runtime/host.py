"""NodeHost: a set of protocol nodes running live in one process.

The host is the runtime counterpart of
:class:`~repro.gossip.system.GossipSystem`: it owns the wall clock, the
asyncio scheduler, the runtime network, the shared ledger / delivery log /
subscription table, and one protocol node per hosted participant.  The node
classes are the *simulator's* node classes, unmodified — the host simply
hands them an :class:`~repro.runtime.scheduler.AsyncScheduler` where they
expect a ``Simulator`` and a :class:`~repro.runtime.network.RuntimeNetwork`
where they expect a ``Network``.

The host also answers the runtime's control frames, so a remote peer (for
example a standalone load generator) can publish events and exchange
subscriptions over the wire:

* ``runtime.publish`` — publish the carried event from the addressed node;
* ``runtime.subscribe`` / ``runtime.unsubscribe`` — add or remove the
  carried filter on the addressed node.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence, Type

from ..core.accounting import WorkLedger
from ..core.policy import EXPRESSIVE_POLICY, FairnessPolicy
from ..analysis.fairness_report import SystemFairnessSummary, summarise_fairness
from ..faults import FaultController, FaultPlan, FaultPlanError
from ..gossip.push import PushGossipNode
from ..membership.base import MembershipProvider
from ..membership.cyclon import cyclon_provider
from ..pubsub.events import Event, EventFactory
from ..pubsub.filters import Filter
from ..pubsub.interfaces import DeliveryCallback, DeliveryLog, DisseminationSystem
from ..pubsub.subscriptions import SubscriptionTable
from ..sim.metrics import MetricsRegistry
from ..sim.node import ProcessRegistry
from ..sim.rng import RngRegistry
from ..registry import StackSpec, build_popularity, build_stack
from ..telemetry import DEFAULT_SNAPSHOT_PERIOD, SnapshotScheduler, Telemetry, TelemetrySink
from .clock import WallClock
from .network import RuntimeNetwork
from .scheduler import AsyncScheduler
from .transport import Transport
from .wire import PUBLISH_KIND, SUBSCRIBE_KIND, UNSUBSCRIBE_KIND

__all__ = ["NodeHost"]

#: Metric names the host maintains in its registry.
DELIVERY_LATENCY_METRIC = "rt.delivery_latency_units"
DELIVERIES_METRIC = "rt.deliveries"
PUBLISHED_METRIC = "rt.published"


class NodeHost(DisseminationSystem):
    """Runs simulator-facing gossip nodes on real time and a real transport.

    Parameters
    ----------
    transport:
        Frame carrier (memory, UDP, or TCP).
    seed:
        Master seed for the protocol RNG streams (peer/event selection stays
        seeded; message *timing* is wall-clock and therefore not replayable).
    time_scale:
        Time units per real second (see :class:`~repro.runtime.clock.WallClock`).
    node_class / node_kwargs / membership_provider:
        Exactly as in :class:`~repro.gossip.system.GossipSystem`.
    """

    name = "live-gossip"

    def __init__(
        self,
        transport: Transport,
        seed: int = 0,
        time_scale: float = 1.0,
        node_class: Type[PushGossipNode] = PushGossipNode,
        node_kwargs: Optional[Dict] = None,
        membership_provider: Optional[MembershipProvider] = None,
        ledger: Optional[WorkLedger] = None,
        delivery_log: Optional[DeliveryLog] = None,
        metrics: Optional[MetricsRegistry] = None,
        telemetry: Optional[Telemetry] = None,
        snapshot_sinks: Optional[Sequence[TelemetrySink]] = None,
        snapshot_period: Optional[float] = None,
        spec: Optional[StackSpec] = None,
        fault_plan: Optional[FaultPlan] = None,
        tracer=None,
    ) -> None:
        self.clock = WallClock(time_scale=time_scale)
        self.scheduler = AsyncScheduler(self.clock, RngRegistry(seed))
        self.network = RuntimeNetwork(self.scheduler, transport)
        self.network.control_handler = self._handle_control
        #: Dissemination tracing: spans stamp protocol time (scheduler.now)
        #: so sim and live traces of the same scenario line up.  Tracing is
        #: observability, not configuration — it never appears in the spec.
        self.tracer = tracer
        if tracer is not None:
            tracer.attach_clock(lambda: self.scheduler.now)
            self.network.tracer = tracer
        self.ledger = ledger if ledger is not None else WorkLedger()
        self._delivery_log = delivery_log if delivery_log is not None else DeliveryLog()
        self.subscriptions = SubscriptionTable()
        self.registry = ProcessRegistry()
        #: The telemetry store; ``metrics`` is the legacy ``(name, node)``
        #: view over the *same* store, kept for compatibility call sites.
        if metrics is not None:
            self.metrics = metrics
            self.telemetry = telemetry if telemetry is not None else metrics.telemetry
        else:
            self.telemetry = telemetry if telemetry is not None else Telemetry()
            self.metrics = MetricsRegistry(telemetry=self.telemetry)
        self._latency_histogram = self.telemetry.histogram(DELIVERY_LATENCY_METRIC)
        self._deliveries_counter = self.telemetry.counter(DELIVERIES_METRIC)
        self._published_counter = self.telemetry.counter(PUBLISHED_METRIC)
        #: Periodic snapshot wiring: explicit arguments win, otherwise the
        #: spec's TelemetrySpec applies.  Periods are in protocol time units
        #: (the wall clock's scale maps them onto real seconds).
        self._snapshot_sinks = list(snapshot_sinks) if snapshot_sinks else []
        self._snapshot_period = snapshot_period
        if spec is not None and spec.telemetry.sinks and not self._snapshot_sinks:
            self._snapshot_sinks = spec.telemetry.build_sinks()
            if self._snapshot_period is None:
                self._snapshot_period = spec.telemetry.period
        self.snapshot_scheduler: Optional[SnapshotScheduler] = None
        self.nodes: Dict[str, PushGossipNode] = {}
        self._factories: Dict[str, EventFactory] = {}
        self._node_class = node_class
        self._node_kwargs = dict(node_kwargs or {})
        self._provider = (
            membership_provider if membership_provider is not None else cyclon_provider()
        )
        #: In spec mode the host builds a complete registered system through
        #: the component registry on :meth:`start` (timers need the running
        #: asyncio loop) and delegates the §2 API to it.
        self._spec = spec
        self.system: Optional[DisseminationSystem] = None
        #: Topology runtime (domain map, bridge router, geo profile) of an
        #: adopted multi-domain system; ``None`` on flat clusters.
        self._topology = None
        if spec is not None:
            self.name = f"live-{spec.system.kind}"
        #: Fault injection: an explicit plan wins; otherwise the spec's
        #: faults section is compiled on :meth:`start` (after the nodes
        #: exist, so the plan can be validated against the real universe).
        self._fault_plan = fault_plan
        self.fault_controller: Optional[FaultController] = None
        self._started = False

    # --------------------------------------------------------------- wiring

    @property
    def transport(self) -> Transport:
        """The transport underneath this host."""
        return self.network.transport

    @property
    def delivery_log(self) -> DeliveryLog:
        return self._delivery_log

    def node_ids(self) -> List[str]:
        return sorted(self.nodes)

    def node(self, node_id: str) -> PushGossipNode:
        """Return the node object for ``node_id``."""
        return self.nodes[node_id]

    def add_node(
        self,
        node_id: str,
        node_class: Optional[Type[PushGossipNode]] = None,
        **overrides,
    ) -> PushGossipNode:
        """Create (but do not start) one hosted node."""
        if self._spec is not None:
            raise ValueError(
                "this host builds its nodes from a StackSpec; set spec.nodes instead"
            )
        if node_id in self.nodes:
            raise ValueError(f"duplicate node id {node_id!r}")
        kwargs = dict(self._node_kwargs)
        kwargs.update(overrides)
        cls = node_class if node_class is not None else self._node_class
        kwargs.setdefault("telemetry", self.telemetry)
        node = cls(
            node_id,
            self.scheduler,
            self.network,
            membership_provider=self._provider,
            ledger=self.ledger,
            delivery_log=self._delivery_log,
            **kwargs,
        )
        node.add_delivery_callback(self._record_delivery)
        if self.tracer is not None and hasattr(node, "_trace_state"):
            node.tracer = self.tracer
        self.nodes[node_id] = node
        self.registry.add(node)
        self._factories[node_id] = EventFactory(node_id)
        return node

    def add_nodes(self, node_ids: Sequence[str], **overrides) -> None:
        """Create several nodes in one call."""
        for node_id in node_ids:
            self.add_node(node_id, **overrides)

    def bootstrap(self, degree: int = 10) -> None:
        """Give every node a random set of initial contacts."""
        ids = list(self.nodes)
        rng = self.scheduler.rng.stream("bootstrap")
        for node_id, node in self.nodes.items():
            others = [candidate for candidate in ids if candidate != node_id]
            seeds = others if degree >= len(others) else rng.sample(others, degree)
            node.bootstrap(seeds)

    # ------------------------------------------------------------- lifecycle

    async def start(self, bootstrap_degree: int = 10) -> None:
        """Start the transport, build/bootstrap the stack, start every node.

        In spec mode the registered system is constructed *here* rather than
        in ``__init__`` because protocol timers schedule against the running
        asyncio loop.
        """
        if self._started:
            return
        await self.transport.start()
        if self._spec is not None:
            if self.system is None:
                self._build_from_spec(self._spec)
        else:
            self.bootstrap(bootstrap_degree)
            for node in self.nodes.values():
                node.start()
        if self._snapshot_sinks and self.snapshot_scheduler is None:
            period = (
                self._snapshot_period
                if self._snapshot_period is not None
                else DEFAULT_SNAPSHOT_PERIOD
            )
            self.snapshot_scheduler = SnapshotScheduler(
                self.telemetry,
                self._snapshot_sinks,
                period,
                self.scheduler,
                collect=self._collect_telemetry,
            )
            self.snapshot_scheduler.start()
        self._started = True
        try:
            self._start_faults()
        except FaultPlanError:
            # The transport, node timers, and snapshot scheduler are
            # already live; tear everything down so an unsatisfiable plan
            # leaves no half-started cluster behind.
            await self.stop()
            raise

    def _start_faults(self) -> None:
        """Validate and start the fault plan against the live cluster.

        The same :class:`~repro.faults.plan.FaultPlan` that drives the
        simulator drives this host: the controller crashes/recovers member
        nodes through the shared process registry, and partitions/perturbs
        links through :class:`~repro.runtime.network.RuntimeNetwork`.
        """
        plan = self._fault_plan
        if plan is None and self._spec is not None:
            plan = FaultPlan.from_flat(self._spec.to_config())
        if plan is None or plan.is_empty():
            return
        if plan.needs_registry() and len(self.registry) == 0:
            raise FaultPlanError(
                f"fault plan requests node faults but host {self.name!r} has "
                "no registered member processes"
            )
        node_ids = self.registry.ids() if len(self.registry) else None
        plan.validate(node_ids=node_ids)
        self.fault_controller = FaultController(
            self.scheduler,
            self.network,
            self.registry,
            plan,
            domain_map=self._topology.domain_map if self._topology is not None else None,
            telemetry=self.telemetry,
        )
        self.fault_controller.start()

    def _build_from_spec(self, spec: StackSpec) -> None:
        """Build the system named by ``spec.system.kind`` and adopt it."""
        popularity = build_popularity(spec)
        system = build_stack(
            spec,
            self.scheduler,
            self.network,
            popularity=popularity,
            live=True,
            telemetry=self.telemetry,
        )
        self.adopt_system(system)

    def adopt_system(self, system: DisseminationSystem) -> None:
        """Host an externally built system: share its state, observe deliveries.

        The host's ledger, delivery log, and subscription table become the
        system's own (so live fairness/reliability reports read the real
        data), and the host's latency/delivery metrics hook into every
        application-facing node.
        """
        self.system = system
        self.ledger = system.ledger
        self._delivery_log = system.delivery_log
        self.subscriptions = system.subscriptions
        self._topology = getattr(system, "topology", None)
        if hasattr(system, "registry"):
            self.registry = system.registry
        self.nodes = dict(system.client_nodes())
        for node in self.nodes.values():
            node.add_delivery_callback(self._record_delivery)
            if self.tracer is not None and hasattr(node, "_trace_state"):
                node.tracer = self.tracer

    async def stop(self) -> None:
        """Stop all timers and tear the transport down.

        An active snapshot scheduler emits one final snapshot (so the
        artifact always covers the full run) before the timers die.
        """
        if not self._started:
            return
        self._started = False
        # Final snapshot first, controller second: a run that ends while a
        # partition/perturbation is still active must report it that way
        # (the controller's stop() clears live network faults and zeroes
        # their gauges).
        if self.snapshot_scheduler is not None:
            self.snapshot_scheduler.stop(final=True)
            self.snapshot_scheduler = None
        if self.fault_controller is not None:
            self.fault_controller.stop()
            self.fault_controller = None
        self.scheduler.shutdown()
        await self.transport.stop()

    async def run_for(self, seconds: float) -> None:
        """Let the cluster run for ``seconds`` of real time."""
        await asyncio.sleep(seconds)

    def stop_node(self, node_id: str) -> None:
        """Fault actuator: fail-stop one hosted member node.

        Timers stop and the node stops receiving frames; protocol state is
        preserved for :meth:`restart_node` (exactly the simulator's
        crash/recover semantics — the nodes are the same classes).
        """
        self.registry.get(node_id).crash()

    def restart_node(self, node_id: str) -> None:
        """Fault actuator: bring a stopped member node back up."""
        self.registry.get(node_id).recover()

    # ----------------------------------------------------------- operations

    def publish(self, publisher_id: str, event: Optional[Event] = None, **attributes) -> Event:
        """Publish an event from ``publisher_id`` (same API as GossipSystem)."""
        if self.system is not None:
            event = self.system.publish(publisher_id, event=event, **attributes)
            self._published_counter.increment()
            return event
        if event is None:
            factory = self._factories[publisher_id]
            topic = attributes.pop("topic", None)
            size = attributes.pop("size", 1)
            event = factory.create(attributes=attributes, topic=topic, size=size)
        event = event.with_time(self.scheduler.now)
        self.nodes[publisher_id].publish(event)
        self._published_counter.increment()
        return event

    def subscribe(
        self,
        node_id: str,
        subscription_filter: Filter,
        callbacks: Sequence[DeliveryCallback] = (),
    ) -> None:
        if self.system is not None:
            self.system.subscribe(node_id, subscription_filter, callbacks=callbacks)
            return
        node = self.nodes[node_id]
        if node.subscribe(subscription_filter):
            self.subscriptions.subscribe(
                node_id, subscription_filter, timestamp=self.scheduler.now
            )
        for callback in callbacks:
            node.add_delivery_callback(callback)

    def unsubscribe(self, node_id: str, subscription_filter: Filter) -> None:
        if self.system is not None:
            self.system.unsubscribe(node_id, subscription_filter)
            return
        node = self.nodes[node_id]
        if node.unsubscribe(subscription_filter):
            self.subscriptions.unsubscribe(
                node_id, subscription_filter, timestamp=self.scheduler.now
            )

    # -------------------------------------------------------------- control

    def _handle_control(self, message) -> None:
        """Apply a ``runtime.*`` control frame addressed to a hosted node."""
        if message.recipient not in self.nodes:
            return
        if message.kind == PUBLISH_KIND:
            self.publish(message.recipient, event=message.payload)
        elif message.kind == SUBSCRIBE_KIND:
            self.subscribe(message.recipient, message.payload)
        elif message.kind == UNSUBSCRIBE_KIND:
            self.unsubscribe(message.recipient, message.payload)

    # -------------------------------------------------------------- metrics

    def _record_delivery(self, node_id: str, event: Event) -> None:
        latency_units = max(0.0, self.scheduler.now - event.published_at)
        self._latency_histogram.observe(latency_units)
        self._deliveries_counter.increment()
        if self._topology is not None:
            domain = self._topology.domain(node_id)
            if domain is not None:
                self.telemetry.observe(
                    DELIVERY_LATENCY_METRIC, latency_units, domain=domain
                )

    def _collect_telemetry(self) -> None:
        """Refresh derived gauges right before a snapshot is frozen."""
        self.telemetry.set_gauge("rt.time_units", self.scheduler.now)
        self.telemetry.set_gauge("rt.nodes", len(self.nodes))
        fairness = self.fairness_summary().report
        self.telemetry.set_gauge("fairness.ratio_jain", fairness.ratio_jain)
        self.telemetry.set_gauge("fairness.wasted_share", fairness.wasted_share)

    # -------------------------------------------------------------- queries

    def interested_nodes(self, event: Event) -> List[str]:
        """Oracle: which nodes should deliver this event (from the table)."""
        return self.subscriptions.interested_nodes(event)

    def topics_of(self, node_id: str) -> List[str]:
        """Topics a node is subscribed to (per the subscription table)."""
        return self.subscriptions.topics_of_node(node_id)

    def fairness_summary(
        self, policy: FairnessPolicy = EXPRESSIVE_POLICY, system_name: Optional[str] = None
    ) -> SystemFairnessSummary:
        """Fairness summary of everything recorded so far (live-readable)."""
        return summarise_fairness(
            self.ledger, policy=policy, system_name=system_name or self.name
        )
