"""Tests for partial views and the membership protocols."""

from __future__ import annotations

import pytest

from repro.membership import (
    CyclonMembership,
    FullMembership,
    InterestAwareMembership,
    LpbcastMembership,
    NodeDescriptor,
    PartialView,
    cyclon_provider,
    full_membership_provider,
    lpbcast_provider,
)
from repro.sim import Network, Process, Simulator


class MemberNode(Process):
    """Process that hosts a membership component and runs it every round."""

    def __init__(self, node_id, simulator, network, provider):
        super().__init__(node_id, simulator, network)
        self.membership = provider(self)

    def on_start(self):
        self.add_timer("round", 1.0)

    def on_timer(self, name):
        self.membership.on_round()

    def on_message(self, message):
        self.membership.handle(message)


def build_overlay(simulator, network, provider, count=20, seeds=4):
    nodes = {}
    for index in range(count):
        node = MemberNode(f"n{index}", simulator, network, provider)
        nodes[node.node_id] = node
    ids = sorted(nodes)
    rng = simulator.rng.stream("test-bootstrap")
    for node in nodes.values():
        others = [other for other in ids if other != node.node_id]
        node.membership.bootstrap(rng.sample(others, min(seeds, len(others))))
        node.start()
    return nodes


class TestPartialView:
    def test_never_contains_owner(self):
        view = PartialView("me", capacity=5)
        assert not view.add(NodeDescriptor("me"))
        assert len(view) == 0

    def test_capacity_respected_with_age_based_eviction(self):
        view = PartialView("me", capacity=2)
        view.add(NodeDescriptor("a", age=5))
        view.add(NodeDescriptor("b", age=1))
        assert view.add(NodeDescriptor("c", age=0))
        assert len(view) == 2
        assert "a" not in view
        # An older descriptor than everything in the view is rejected.
        assert not view.add(NodeDescriptor("d", age=9))

    def test_duplicate_keeps_younger(self):
        view = PartialView("me", capacity=5)
        view.add(NodeDescriptor("a", age=5))
        assert view.add(NodeDescriptor("a", age=1))
        assert view.get("a").age == 1
        assert not view.add(NodeDescriptor("a", age=7))

    def test_age_all_and_oldest(self):
        view = PartialView("me", capacity=5)
        view.add(NodeDescriptor("a", age=0))
        view.add(NodeDescriptor("b", age=3))
        view.age_all()
        assert view.get("a").age == 1
        assert view.oldest().node_id == "b"

    def test_sample_excludes_and_bounds(self):
        view = PartialView("me", capacity=10)
        for name in "abcde":
            view.add(NodeDescriptor(name))
        import random

        rng = random.Random(1)
        sample = view.sample(rng, 3, exclude=["a"])
        assert len(sample) == 3
        assert "a" not in sample
        assert set(view.sample(rng, 99)) == set("abcde")

    def test_replace_entries(self):
        view = PartialView("me", capacity=2)
        view.replace_entries([NodeDescriptor("a"), NodeDescriptor("b"), NodeDescriptor("c")])
        assert len(view) == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PartialView("me", capacity=0)


class TestFullMembership:
    def test_selects_only_alive_nodes(self, simulator, network):
        provider = full_membership_provider(network)
        nodes = build_overlay(simulator, network, provider, count=10)
        nodes["n3"].crash()
        rng = simulator.rng.stream("test")
        component = nodes["n0"].membership
        partners = component.select_partners(20, rng)
        assert "n3" not in partners
        assert "n0" not in partners
        assert set(partners).issubset(set(component.known_peers()))

    def test_sample_size_respected(self, simulator, network):
        provider = full_membership_provider(network)
        nodes = build_overlay(simulator, network, provider, count=10)
        rng = simulator.rng.stream("test")
        assert len(nodes["n0"].membership.select_partners(3, rng)) == 3


class TestCyclonMembership:
    def test_views_fill_and_stay_bounded(self, simulator, network):
        provider = cyclon_provider(view_size=8, shuffle_size=3)
        nodes = build_overlay(simulator, network, provider, count=30, seeds=3)
        simulator.run(until=20.0)
        sizes = [len(node.membership.view) for node in nodes.values()]
        assert all(1 <= size <= 8 for size in sizes)
        assert sum(sizes) / len(sizes) > 4

    def test_shuffles_happen_in_both_roles(self, simulator, network):
        provider = cyclon_provider(view_size=8, shuffle_size=3)
        nodes = build_overlay(simulator, network, provider, count=20, seeds=3)
        simulator.run(until=15.0)
        assert sum(node.membership.shuffles_initiated for node in nodes.values()) > 0
        assert sum(node.membership.shuffles_answered for node in nodes.values()) > 0

    def test_crashed_node_eventually_leaves_views(self, simulator, network):
        provider = cyclon_provider(view_size=6, shuffle_size=3)
        nodes = build_overlay(simulator, network, provider, count=20, seeds=5)
        simulator.run(until=5.0)
        nodes["n5"].crash()
        simulator.run(until=60.0)
        holders = sum(1 for node in nodes.values() if node.alive and "n5" in node.membership.view)
        alive = sum(1 for node in nodes.values() if node.alive)
        # The dead node's descriptor only ages, so most views have purged it.
        assert holders <= alive * 0.4

    def test_overlay_is_connected_after_mixing(self, simulator, network):
        provider = cyclon_provider(view_size=6, shuffle_size=3)
        nodes = build_overlay(simulator, network, provider, count=25, seeds=2)
        simulator.run(until=30.0)
        # Breadth-first search over the union of directed view edges.
        reached = {"n0"}
        frontier = ["n0"]
        while frontier:
            current = frontier.pop()
            for neighbor in nodes[current].membership.known_peers():
                if neighbor not in reached:
                    reached.add(neighbor)
                    frontier.append(neighbor)
        assert len(reached) == len(nodes)

    def test_invalid_parameters(self, simulator, network):
        node = MemberNode("x", simulator, network, full_membership_provider(network))
        with pytest.raises(ValueError):
            CyclonMembership(node, view_size=2, shuffle_size=5)
        with pytest.raises(ValueError):
            CyclonMembership(node, view_size=0)


class TestLpbcastMembership:
    def test_digest_contains_self(self, simulator, network):
        provider = lpbcast_provider(view_size=10, digest_size=4)
        nodes = build_overlay(simulator, network, provider, count=10, seeds=3)
        digest = nodes["n0"].membership.digest_for_gossip()
        assert any(descriptor.node_id == "n0" for descriptor in digest.descriptors)
        assert len(digest.descriptors) <= 4

    def test_absorb_digest_learns_new_peers(self, simulator, network):
        provider = lpbcast_provider(view_size=10, digest_size=4)
        nodes = build_overlay(simulator, network, provider, count=6, seeds=1)
        target = nodes["n0"].membership
        before = set(target.known_peers())
        digest = nodes["n5"].membership.digest_for_gossip()
        target.absorb_digest(digest)
        assert set(target.known_peers()) >= before

    def test_view_stays_bounded_under_many_digests(self, simulator, network):
        provider = lpbcast_provider(view_size=5, digest_size=3)
        nodes = build_overlay(simulator, network, provider, count=20, seeds=2)
        component = nodes["n0"].membership
        for node_id, node in nodes.items():
            if node_id != "n0":
                component.absorb_digest(node.membership.digest_for_gossip())
        assert len(component.view) <= 5

    def test_standalone_refresh_sends_messages(self, simulator, network):
        provider = lpbcast_provider(view_size=10, digest_size=4, standalone_refresh=True)
        build_overlay(simulator, network, provider, count=10, seeds=3)
        simulator.run(until=10.0)
        assert network.stats.sent_by_kind.get("membership.lpbcast.digest", 0) > 0


class TestInterestAwareMembership:
    def _build(self, simulator, network, bias=1.0):
        topics = {
            "n0": ["a"],
            "n1": ["a"],
            "n2": ["a"],
            "n3": ["b"],
            "n4": ["b"],
            "n5": ["c"],
        }
        provider = full_membership_provider(network)
        nodes = build_overlay(simulator, network, provider, count=6)
        owner = nodes["n0"]
        component = InterestAwareMembership(
            owner,
            base=provider(owner),
            topics_of=lambda peer: topics.get(peer, []),
            own_topics=lambda: topics["n0"],
            bias=bias,
        )
        return component, nodes

    def test_biased_selection_prefers_overlapping_peers(self, simulator, network):
        component, _ = self._build(simulator, network, bias=1.0)
        rng = simulator.rng.stream("test")
        partners = component.select_partners(2, rng)
        assert set(partners).issubset({"n1", "n2"})

    def test_mixing_keeps_some_uniform_choices(self, simulator, network):
        component, _ = self._build(simulator, network, bias=0.0)
        rng = simulator.rng.stream("test")
        seen = set()
        for _ in range(30):
            seen.update(component.select_partners(2, rng))
        assert seen - {"n1", "n2"}

    def test_peers_for_topic(self, simulator, network):
        component, _ = self._build(simulator, network)
        rng = simulator.rng.stream("test")
        assert set(component.peers_for_topic("b", 5, rng)) == {"n3", "n4"}

    def test_invalid_bias(self, simulator, network):
        with pytest.raises(ValueError):
            self._build(simulator, network, bias=2.0)
