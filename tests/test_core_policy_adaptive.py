"""Tests for fairness policies, benefit estimators, and the adaptive controllers."""

from __future__ import annotations

import pytest

from repro.core import (
    AdaptiveFanoutController,
    AdaptivePayloadController,
    BenefitEstimator,
    EXPRESSIVE_POLICY,
    Ewma,
    FairnessPolicy,
    FanoutSchedule,
    PayloadSchedule,
    TOPIC_BASED_POLICY,
    WorkLedger,
)
from repro.core.accounting import BenefitWeights, ContributionWeights, NodeAccount


class TestFairnessPolicy:
    def test_expressive_policy_ignores_filters(self):
        account = NodeAccount(node_id="a", events_delivered=4, filters_placed=10)
        assert EXPRESSIVE_POLICY.benefit(account) == 4.0

    def test_topic_policy_counts_filters_when_quiet(self):
        account = NodeAccount(node_id="a", events_delivered=0, filters_placed=3)
        assert TOPIC_BASED_POLICY.benefit(account, busyness=0.0) == 3.0

    def test_topic_policy_fades_filter_term_when_busy(self):
        account = NodeAccount(node_id="a", events_delivered=0, filters_placed=3)
        quiet = TOPIC_BASED_POLICY.benefit(account, busyness=0.0)
        busy = TOPIC_BASED_POLICY.benefit(account, busyness=20.0)
        assert busy < quiet

    def test_target_shares_proportional_to_benefit(self):
        policy = FairnessPolicy(minimum_share=0.0)
        shares = policy.target_shares({"a": 30.0, "b": 10.0, "c": 0.0})
        assert shares["a"] == pytest.approx(0.75)
        assert shares["b"] == pytest.approx(0.25)
        assert shares["c"] == pytest.approx(0.0)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_target_shares_floor_keeps_everyone_connected(self):
        policy = FairnessPolicy(minimum_share=0.5)
        shares = policy.target_shares({"a": 100.0, "b": 0.0})
        assert shares["b"] > 0.0

    def test_target_shares_equal_when_no_benefit(self):
        policy = FairnessPolicy()
        shares = policy.target_shares({"a": 0.0, "b": 0.0})
        assert shares["a"] == pytest.approx(shares["b"])

    def test_instability_penalty_raises_share(self):
        policy = FairnessPolicy(instability_penalty=0.5, minimum_share=0.0)
        stable = policy.target_shares({"a": 10.0, "b": 10.0}, crashes={"a": 0, "b": 0})
        flappy = policy.target_shares({"a": 10.0, "b": 10.0}, crashes={"a": 0, "b": 4})
        assert flappy["b"] > stable["b"]

    def test_policy_level_ledger_aggregation(self):
        ledger = WorkLedger()
        ledger.record_delivery("a", events=5)
        ledger.record_subscribe("a")
        ledger.record_gossip_send("b", messages=7)
        contributions = TOPIC_BASED_POLICY.contributions(ledger)
        benefits = TOPIC_BASED_POLICY.benefits(ledger)
        assert contributions["b"] == 7.0
        assert benefits["a"] > 0

    def test_empty_target_shares(self):
        assert FairnessPolicy().target_shares({}) == {}


class TestEwmaAndEstimator:
    def test_ewma_first_observation_is_exact(self):
        ewma = Ewma(alpha=0.5)
        assert ewma.observe(10.0) == 10.0

    def test_ewma_smooths_towards_new_samples(self):
        ewma = Ewma(alpha=0.5)
        ewma.observe(0.0)
        assert ewma.observe(10.0) == 5.0
        ewma.reset()
        assert ewma.value == 0.0 and ewma.observations == 0

    def test_ewma_invalid_alpha(self):
        with pytest.raises(ValueError):
            Ewma(alpha=0.0)

    def test_relative_benefit_neutral_without_data(self):
        estimator = BenefitEstimator()
        assert estimator.relative_benefit() == 1.0

    def test_relative_benefit_tracks_ratio(self):
        estimator = BenefitEstimator(own_alpha=1.0, peer_alpha=1.0)
        estimator.observe_own_round(8.0)
        estimator.observe_peer_rate(2.0)
        assert estimator.relative_benefit() == pytest.approx(4.0)

    def test_zero_population_rate_boosts_benefiting_node(self):
        estimator = BenefitEstimator(own_alpha=1.0, peer_alpha=1.0)
        estimator.observe_own_round(3.0)
        estimator.observe_peer_rate(0.0)
        assert estimator.relative_benefit() == 2.0
        quiet = BenefitEstimator(own_alpha=1.0, peer_alpha=1.0)
        quiet.observe_own_round(0.0)
        quiet.observe_peer_rate(0.0)
        assert quiet.relative_benefit() == 1.0

    def test_negative_peer_rates_clamped(self):
        estimator = BenefitEstimator(peer_alpha=1.0)
        estimator.observe_peer_rate(-5.0)
        assert estimator.population_rate == 0.0


class TestFanoutSchedule:
    def test_clamp(self):
        schedule = FanoutSchedule(base_fanout=4, min_fanout=2, max_fanout=8)
        assert schedule.clamp(0.4) == 2
        assert schedule.clamp(5.4) == 5
        assert schedule.clamp(99) == 8

    def test_invalid_ordering_rejected(self):
        with pytest.raises(ValueError):
            FanoutSchedule(base_fanout=1, min_fanout=2, max_fanout=3)
        with pytest.raises(ValueError):
            PayloadSchedule(base_payload=1, min_payload=2, max_payload=4)


class TestAdaptiveFanoutController:
    def test_high_benefit_node_raises_fanout(self):
        controller = AdaptiveFanoutController(
            schedule=FanoutSchedule(base_fanout=4, min_fanout=1, max_fanout=12), smoothing=1.0
        )
        for _ in range(10):
            controller.observe_peer_rate(1.0)
            controller.observe_round(own_deliveries=4.0)
        assert controller.current_fanout > 4

    def test_low_benefit_node_drops_to_floor(self):
        controller = AdaptiveFanoutController(
            schedule=FanoutSchedule(base_fanout=4, min_fanout=1, max_fanout=12), smoothing=1.0
        )
        for _ in range(10):
            controller.observe_peer_rate(5.0)
            controller.observe_round(own_deliveries=0.0)
        assert controller.current_fanout == 1

    def test_neutral_node_stays_at_base(self):
        controller = AdaptiveFanoutController(
            schedule=FanoutSchedule(base_fanout=4, min_fanout=1, max_fanout=12), smoothing=1.0
        )
        for _ in range(10):
            controller.observe_peer_rate(2.0)
            controller.observe_round(own_deliveries=2.0)
        assert controller.current_fanout == 4

    def test_convergence_measurement(self):
        controller = AdaptiveFanoutController(smoothing=1.0)
        for _ in range(12):
            controller.observe_peer_rate(1.0)
            controller.observe_round(own_deliveries=1.0)
        rounds = controller.rounds_to_converge(stable_rounds=5)
        assert rounds is not None and rounds <= 5
        assert controller.rounds_to_converge(target=99) is None
        with pytest.raises(ValueError):
            controller.rounds_to_converge(stable_rounds=0)

    def test_reacts_to_interest_change(self):
        controller = AdaptiveFanoutController(
            schedule=FanoutSchedule(base_fanout=4, min_fanout=1, max_fanout=16), smoothing=0.6
        )
        for _ in range(15):
            controller.observe_peer_rate(2.0)
            controller.observe_round(own_deliveries=0.0)
        low = controller.current_fanout
        for _ in range(15):
            controller.observe_peer_rate(2.0)
            controller.observe_round(own_deliveries=8.0)
        assert controller.current_fanout > low


class TestAdaptivePayloadController:
    def test_scaling_with_relative_benefit(self):
        controller = AdaptivePayloadController(
            schedule=PayloadSchedule(base_payload=8, min_payload=1, max_payload=32), smoothing=1.0
        )
        for _ in range(10):
            controller.observe_peer_rate(1.0)
            controller.observe_round(own_deliveries=3.0, backlog=0)
        assert controller.current_payload > 8

    def test_backlog_floor_prevents_starving_the_buffer(self):
        controller = AdaptivePayloadController(
            schedule=PayloadSchedule(base_payload=8, min_payload=1, max_payload=32),
            smoothing=1.0,
            backlog_fraction=0.5,
        )
        for _ in range(10):
            controller.observe_peer_rate(10.0)
            controller.observe_round(own_deliveries=0.0, backlog=20)
        assert controller.current_payload >= 10

    def test_floor_and_cap_respected(self):
        schedule = PayloadSchedule(base_payload=4, min_payload=2, max_payload=6)
        controller = AdaptivePayloadController(schedule=schedule, smoothing=1.0)
        for _ in range(10):
            controller.observe_peer_rate(100.0)
            controller.observe_round(own_deliveries=0.0, backlog=0)
        assert controller.current_payload == 2
        for _ in range(30):
            controller.observe_peer_rate(0.01)
            controller.observe_round(own_deliveries=50.0, backlog=0)
        assert controller.current_payload == 6

    def test_convergence_history(self):
        controller = AdaptivePayloadController(smoothing=1.0)
        for _ in range(8):
            controller.observe_peer_rate(1.0)
            controller.observe_round(own_deliveries=1.0)
        assert controller.rounds_to_converge(stable_rounds=3) is not None

    def test_invalid_backlog_fraction(self):
        with pytest.raises(ValueError):
            AdaptivePayloadController(backlog_fraction=1.5)
