"""DKS-style per-topic grouping with an index DHT (reference [1], §4.1).

DKS(N, k, f) multicast groups processes by interest: each topic has its own
group containing only its subscribers, and a special *index* layer lets any
process find the group of a topic it wants to join or publish to.  The paper
acknowledges that dissemination inside a group is fair (only interested
processes forward), but points out that "some processes in the index DHT
which are close to frequently contacted rendezvous nodes will suffer" — the
index lookup and group-coordination traffic concentrates on the nodes whose
identifiers happen to be close to popular topic keys.

Implementation: one Pastry overlay over all nodes serves as the index.  The
root of ``hash(topic)`` acts as the topic *coordinator*: subscriptions are
routed to it hop by hop (every hop is index maintenance work charged to
uninterested forwarders), it stores the member list, and publications are
routed to it and then sent directly to every member.  Members deliver; the
coordinator and the index-route forwarders do the unpaid work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..core.accounting import WorkLedger
from ..pubsub.events import Event, EventFactory
from ..pubsub.filters import Filter, TopicFilter
from ..pubsub.interfaces import DeliveryCallback, DeliveryLog, DisseminationSystem
from ..pubsub.subscriptions import SubscriptionTable
from ..sim.engine import Simulator
from ..sim.network import Message, Network
from ..sim.node import Process, ProcessRegistry
from .pastry import PastryRouter

__all__ = ["DksNode", "DksSystem"]

REGISTER_KIND = "dks.register"
UNREGISTER_KIND = "dks.unregister"
ROUTE_PUBLISH_KIND = "dks.route-publish"
GROUP_SEND_KIND = "dks.group-send"


@dataclass(frozen=True)
class _RegisterPayload:
    topic: str
    member: str
    register: bool


@dataclass(frozen=True)
class _PublishPayload:
    topic: str
    event: Event


def _encode_register(payload: "_RegisterPayload") -> dict:
    return {"topic": payload.topic, "member": payload.member, "register": payload.register}


def _decode_register(encoded: dict) -> "_RegisterPayload":
    return _RegisterPayload(
        topic=str(encoded["topic"]),
        member=str(encoded["member"]),
        register=bool(encoded["register"]),
    )


def _encode_publish(payload: "_PublishPayload") -> dict:
    return {"topic": payload.topic, "event": payload.event.to_dict()}


def _decode_publish(encoded: dict) -> "_PublishPayload":
    return _PublishPayload(topic=str(encoded["topic"]), event=Event.from_dict(encoded["event"]))


#: ``kind -> (encoder, decoder)`` consumed by the runtime wire codec
#: (:mod:`repro.runtime.wire`).
WIRE_CODECS = {
    REGISTER_KIND: (_encode_register, _decode_register),
    UNREGISTER_KIND: (_encode_register, _decode_register),
    ROUTE_PUBLISH_KIND: (_encode_publish, _decode_publish),
    GROUP_SEND_KIND: (_encode_publish, _decode_publish),
}


class DksNode(Process):
    """A DKS participant: index forwarder, possibly coordinator, possibly member."""

    def __init__(
        self,
        node_id: str,
        simulator: Simulator,
        network: Network,
        router: PastryRouter,
        ledger: WorkLedger,
        delivery_log: DeliveryLog,
    ) -> None:
        super().__init__(node_id, simulator, network)
        self.router = router
        self.ledger = ledger
        self.delivery_log = delivery_log
        self.subscribed_topics: Set[str] = set()
        #: Member lists for topics this node coordinates (is rendezvous for).
        self.coordinated_groups: Dict[str, Set[str]] = {}
        self.delivered_event_ids: Set[str] = set()
        self._callbacks: List[DeliveryCallback] = []
        self.ledger.ensure_node(node_id)

    # ------------------------------------------------------------ user API

    def add_delivery_callback(self, callback: DeliveryCallback) -> None:
        """Register an application callback invoked on every delivery."""
        self._callbacks.append(callback)

    def subscribe_topic(self, topic: str) -> None:
        """Subscribe and register with the topic's coordinator via the index."""
        if topic not in self.subscribed_topics:
            self.subscribed_topics.add(topic)
            self.ledger.record_subscribe(self.node_id)
        self._route_registration(topic, register=True)

    def unsubscribe_topic(self, topic: str) -> None:
        """Unsubscribe and deregister from the coordinator."""
        if topic in self.subscribed_topics:
            self.subscribed_topics.discard(topic)
            self.ledger.record_unsubscribe(self.node_id)
        self._route_registration(topic, register=False)

    def publish(self, event: Event) -> None:
        """Publish: route the event to its topic coordinator through the index."""
        if not self.alive or event.topic is None:
            return
        self.ledger.record_publish(self.node_id)
        payload = _PublishPayload(topic=event.topic, event=event)
        self._route(ROUTE_PUBLISH_KIND, event.topic, payload, size=event.size)

    # ------------------------------------------------------------- routing

    def _route_registration(self, topic: str, register: bool) -> None:
        payload = _RegisterPayload(topic=topic, member=self.node_id, register=register)
        self._route(REGISTER_KIND if register else UNREGISTER_KIND, topic, payload, size=1)

    def _route(self, kind: str, topic: str, payload, size: int) -> None:
        key = self.router.key_for(topic)
        next_hop = self.router.next_hop(self.node_id, key)
        if next_hop is None:
            self._arrived(kind, payload)
        else:
            self.send(next_hop, kind, payload=payload, size=size)
            if kind == ROUTE_PUBLISH_KIND:
                self.ledger.record_gossip_send(self.node_id, messages=1, events=1, size=size)
            else:
                self.ledger.record_subscription_forward(self.node_id)

    # ------------------------------------------------------------- messages

    def on_message(self, message: Message) -> None:
        if message.kind in (REGISTER_KIND, UNREGISTER_KIND, ROUTE_PUBLISH_KIND):
            key = self.router.key_for(message.payload.topic)
            next_hop = self.router.next_hop(self.node_id, key)
            if next_hop is None:
                self._arrived(message.kind, message.payload)
            else:
                self.send(next_hop, message.kind, payload=message.payload, size=message.size)
                if message.kind == ROUTE_PUBLISH_KIND:
                    self.ledger.record_gossip_send(
                        self.node_id, messages=1, events=1, size=message.size
                    )
                else:
                    # Forwarding someone else's (un)subscription: pure index
                    # maintenance work, the DKS unfairness the paper names.
                    self.ledger.record_subscription_forward(self.node_id)
        elif message.kind == GROUP_SEND_KIND:
            self._deliver(message.payload.event)

    def _arrived(self, kind: str, payload) -> None:
        """Handle a message whose route ended at this node (the coordinator)."""
        if kind == REGISTER_KIND:
            self.coordinated_groups.setdefault(payload.topic, set()).add(payload.member)
        elif kind == UNREGISTER_KIND:
            self.coordinated_groups.get(payload.topic, set()).discard(payload.member)
        elif kind == ROUTE_PUBLISH_KIND:
            self._dispatch_to_group(payload)

    def _dispatch_to_group(self, payload: _PublishPayload) -> None:
        members = sorted(self.coordinated_groups.get(payload.topic, set()))
        event = payload.event
        if payload.topic in self.subscribed_topics:
            self._deliver(event)
        targets = [member for member in members if member != self.node_id]
        for member in targets:
            self.send(member, GROUP_SEND_KIND, payload=payload, size=event.size)
        if targets:
            self.ledger.record_gossip_send(
                self.node_id,
                messages=len(targets),
                events=len(targets),
                size=event.size * len(targets),
            )

    def _deliver(self, event: Event) -> None:
        if event.topic not in self.subscribed_topics:
            return
        if event.event_id in self.delivered_event_ids:
            return
        self.delivered_event_ids.add(event.event_id)
        self.ledger.record_delivery(self.node_id)
        self.delivery_log.record(self.node_id, event, delivered_at=self.simulator.now)
        for callback in self._callbacks:
            callback(self.node_id, event)

    def on_crash(self) -> None:
        self.ledger.record_crash(self.node_id)
        self.router.set_alive(self.node_id, False)

    def on_recover(self) -> None:
        self.router.set_alive(self.node_id, True)


class DksSystem(DisseminationSystem):
    """Topic-based dissemination with per-topic groups and an index DHT."""

    name = "dks"

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        node_ids: Sequence[str],
        ledger: Optional[WorkLedger] = None,
        delivery_log: Optional[DeliveryLog] = None,
    ) -> None:
        if not node_ids:
            raise ValueError("a DKS system needs at least one node")
        self.simulator = simulator
        self.network = network
        self.ledger = ledger if ledger is not None else WorkLedger()
        self._delivery_log = delivery_log if delivery_log is not None else DeliveryLog()
        self.subscriptions = SubscriptionTable()
        self.router = PastryRouter(list(node_ids))
        self.registry = ProcessRegistry()
        self.nodes: Dict[str, DksNode] = {}
        self._factories: Dict[str, EventFactory] = {}
        for node_id in node_ids:
            node = DksNode(
                node_id, simulator, network, self.router, self.ledger, self._delivery_log
            )
            node.start()
            self.nodes[node_id] = node
            self.registry.add(node)
            self._factories[node_id] = EventFactory(node_id)

    # ------------------------------------------------------------- §2 API

    def publish(self, publisher_id: str, event: Optional[Event] = None, **attributes) -> Event:
        if event is None:
            factory = self._factories[publisher_id]
            topic = attributes.pop("topic", None)
            size = attributes.pop("size", 1)
            event = factory.create(attributes=attributes, topic=topic, size=size)
        if event.topic is None:
            raise ValueError("DKS grouping is topic-based: the event needs a topic")
        event = event.with_time(self.simulator.now)
        self.nodes[publisher_id].publish(event)
        return event

    def subscribe(
        self,
        node_id: str,
        subscription_filter: Filter,
        callbacks: Sequence[DeliveryCallback] = (),
    ) -> None:
        if not isinstance(subscription_filter, TopicFilter):
            raise TypeError("DKS grouping supports topic-based subscriptions only")
        node = self.nodes[node_id]
        node.subscribe_topic(subscription_filter.topic)
        self.subscriptions.subscribe(node_id, subscription_filter, timestamp=self.simulator.now)
        for callback in callbacks:
            node.add_delivery_callback(callback)

    def unsubscribe(self, node_id: str, subscription_filter: Filter) -> None:
        if not isinstance(subscription_filter, TopicFilter):
            raise TypeError("DKS grouping supports topic-based subscriptions only")
        self.nodes[node_id].unsubscribe_topic(subscription_filter.topic)
        self.subscriptions.unsubscribe(node_id, subscription_filter, timestamp=self.simulator.now)

    # -------------------------------------------------------------- queries

    @property
    def delivery_log(self) -> DeliveryLog:
        return self._delivery_log

    def node_ids(self) -> List[str]:
        return sorted(self.nodes)

    def node(self, node_id: str) -> DksNode:
        """Return the node object for ``node_id``."""
        return self.nodes[node_id]

    def run(self, until: float) -> None:
        """Advance the simulation to time ``until``."""
        self.simulator.run(until=until)

    def coordinator_of(self, topic: str) -> str:
        """The index node coordinating a topic's group."""
        return self.router.root_of(self.router.key_for(topic))
