"""The selective information dissemination API of Section 2.

Every dissemination system in this repository — classic push gossip, the
fair gossip protocols, Scribe-style trees, brokers, data-aware multicast —
implements the same three operations the paper defines:

* ``publish(e)``
* ``subscribe(f, callbacks)``
* ``unsubscribe(f)``

:class:`DisseminationSystem` is the abstract interface;
:class:`DeliveryLog` is the shared helper that records deliveries on behalf
of a node (it backs both the user-facing callbacks and the analysis layer),
and :class:`SystemFacade` offers the convenience entry point used by the
examples: build a system, subscribe nodes, publish, run, report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .events import Event
from .filters import Filter

__all__ = ["DeliveryCallback", "DeliveryLog", "DeliveryRecord", "DisseminationSystem"]

#: Signature of a subscriber callback: ``callback(node_id, event)``.
DeliveryCallback = Callable[[str, Event], None]


@dataclass(frozen=True)
class DeliveryRecord:
    """One delivery of an event at a node."""

    node_id: str
    event_id: str
    delivered_at: float
    published_at: float

    @property
    def latency(self) -> float:
        """Delivery latency in simulated time units."""
        return self.delivered_at - self.published_at


class DeliveryLog:
    """Records every delivery performed by a dissemination system.

    The log answers both per-node questions (how many events did ``p``
    deliver — the *benefit* term of Figures 1–3) and per-event questions
    (which interested nodes delivered ``e`` — the reliability measure of the
    Figure 4 experiments).
    """

    def __init__(self) -> None:
        self._by_node: Dict[str, List[DeliveryRecord]] = {}
        self._by_event: Dict[str, List[DeliveryRecord]] = {}
        self._ordered: List[DeliveryRecord] = []
        self._seen: set = set()

    def record(self, node_id: str, event: Event, delivered_at: float) -> Optional[DeliveryRecord]:
        """Record a delivery; duplicate (node, event) pairs are ignored."""
        key = (node_id, event.event_id)
        if key in self._seen:
            return None
        self._seen.add(key)
        record = DeliveryRecord(
            node_id=node_id,
            event_id=event.event_id,
            delivered_at=delivered_at,
            published_at=event.published_at,
        )
        self._by_node.setdefault(node_id, []).append(record)
        self._by_event.setdefault(event.event_id, []).append(record)
        self._ordered.append(record)
        return record

    def ordered_records(self) -> Sequence[DeliveryRecord]:
        """Every record in arrival order (read-only view, do not mutate).

        Incremental consumers — the telemetry collector streaming latencies
        into a histogram mid-run — remember how far they read and index from
        there, so each tick costs O(new records), not O(all records).
        """
        return self._ordered

    def delivered(self, node_id: str, event_id: str) -> bool:
        """Whether the node has delivered the event."""
        return (node_id, event_id) in self._seen

    def deliveries_by_node(self, node_id: str) -> List[DeliveryRecord]:
        """All deliveries performed by a node."""
        return list(self._by_node.get(node_id, ()))

    def deliveries_of_event(self, event_id: str) -> List[DeliveryRecord]:
        """All deliveries of one event across the system."""
        return list(self._by_event.get(event_id, ()))

    def delivery_count(self, node_id: str) -> int:
        """Number of events delivered by a node (the benefit numerator)."""
        return len(self._by_node.get(node_id, ()))

    def nodes(self) -> List[str]:
        """Nodes that delivered at least one event (sorted)."""
        return sorted(self._by_node)

    def event_ids(self) -> List[str]:
        """Ids of events delivered at least once (sorted)."""
        return sorted(self._by_event)

    def total_deliveries(self) -> int:
        """Total number of (node, event) deliveries."""
        return len(self._seen)

    def latencies(self) -> List[float]:
        """Latency of every delivery, in no particular order."""
        return [
            record.delivered_at - record.published_at
            for records in self._by_event.values()
            for record in records
        ]


class DisseminationSystem:
    """Abstract selective information dissemination system (§2).

    Concrete systems wire themselves to a simulator, a network, and a set of
    processes; this interface only fixes the three operations and the access
    to the shared :class:`DeliveryLog` the analysis layer depends on.
    """

    #: Short machine-readable name used in reports and benchmark tables.
    name: str = "abstract"

    def publish(self, publisher_id: str, event: Event) -> Event:
        """Publish ``event`` from ``publisher_id``; returns the stamped event."""
        raise NotImplementedError

    def subscribe(
        self,
        node_id: str,
        subscription_filter: Filter,
        callbacks: Sequence[DeliveryCallback] = (),
    ) -> None:
        """Register interest of ``node_id`` in events matching the filter."""
        raise NotImplementedError

    def unsubscribe(self, node_id: str, subscription_filter: Filter) -> None:
        """Withdraw a previously registered interest."""
        raise NotImplementedError

    @property
    def delivery_log(self) -> DeliveryLog:
        """The log of all deliveries performed so far."""
        raise NotImplementedError

    def node_ids(self) -> List[str]:
        """Identifiers of all participants of the system."""
        raise NotImplementedError

    def client_nodes(self) -> Dict[str, object]:
        """Application-facing nodes, keyed by node id.

        These are the participants that publish, subscribe, and deliver —
        the nodes a host attaches delivery callbacks to.  Systems with
        infrastructure-only participants (for example the broker overlay,
        whose brokers never deliver to an application) override this to
        exclude them.
        """
        nodes = getattr(self, "nodes", None)
        if nodes is None:
            raise NotImplementedError(f"{type(self).__name__} exposes no client node map")
        return nodes
