"""Membership / peer sampling substrate (§4.2 of the paper).

Provides the ``SELECTPARTICIPANTS`` building block of Figure 4: a
full-membership oracle, CYCLON-style view shuffling, lpbcast-style
piggybacked digests, and an interest-aware selection bias that can wrap any
of them.
"""

from .base import MembershipComponent, MembershipProvider
from .cyclon import CyclonMembership, ShufflePayload, cyclon_provider
from .full import FullMembership, full_membership_provider
from .interest_aware import InterestAwareMembership, interest_aware_provider
from .lpbcast import LpbcastMembership, MembershipDigest, lpbcast_provider
from .views import NodeDescriptor, PartialView

__all__ = [
    "MembershipComponent",
    "MembershipProvider",
    "NodeDescriptor",
    "PartialView",
    "FullMembership",
    "full_membership_provider",
    "CyclonMembership",
    "ShufflePayload",
    "cyclon_provider",
    "LpbcastMembership",
    "MembershipDigest",
    "lpbcast_provider",
    "InterestAwareMembership",
    "interest_aware_provider",
]
