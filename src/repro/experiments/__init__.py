"""Declarative experiment harness used by the CLI, benchmarks, and examples.

Layering: :mod:`config` describes experiments, :mod:`scenarios` builds live
systems (and names reusable configs), :mod:`runner` turns one config into an
:class:`ExperimentResult`, :mod:`sweeps` expands parameter grids,
:mod:`cache` persists results content-addressed by config hash, and
:mod:`executor` fans uncached grid points out over worker processes.
"""

from .cache import ARTIFACT_SCHEMA, ResultCache, config_hash
from .config import ExperimentConfig
from .executor import ExecutionReport, ParallelSweepExecutor
from .runner import ExperimentResult, run_experiment
from ..registry import StackSpec
from .scenarios import (
    SYSTEM_NAMES,
    Scenario,
    system_names,
    build_interest,
    build_membership_provider,
    build_popularity,
    build_simulation,
    build_system,
    get_scenario,
    iter_scenarios,
    register_scenario,
    resolve_policy,
    scenario_names,
)
from .sweeps import (
    compare,
    compare_configs,
    grid_configs,
    results_table,
    sweep,
    sweep_configs,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "sweep",
    "compare",
    "results_table",
    "sweep_configs",
    "compare_configs",
    "grid_configs",
    "ParallelSweepExecutor",
    "ExecutionReport",
    "ResultCache",
    "config_hash",
    "ARTIFACT_SCHEMA",
    "Scenario",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "iter_scenarios",
    "build_simulation",
    "build_system",
    "build_popularity",
    "build_interest",
    "build_membership_provider",
    "resolve_policy",
    "SYSTEM_NAMES",
    "system_names",
    "StackSpec",
]
