"""Integration tests: whole-system scenarios cutting across every layer.

These are the end-to-end checks that the reproduction's qualitative claims —
the ones the benchmarks quantify — actually hold on small instances fast
enough for the regular test run.
"""

from __future__ import annotations

import pytest

from tests.conftest import build_gossip_system
from repro.core import EXPRESSIVE_POLICY, TOPIC_BASED_POLICY, evaluate_fairness
from repro.experiments import ExperimentConfig, compare, run_experiment
from repro.pubsub import TopicFilter
from repro.sim import ChurnInjector
from repro.workloads import TopicPopularity, TopicPublicationWorkload, ZipfInterest


class TestFairnessShapeAcrossSystems:
    """The Figure 1 claim, end to end: fair gossip beats the alternatives."""

    @pytest.fixture(scope="class")
    def comparison(self):
        base = ExperimentConfig(
            name="integration",
            nodes=48,
            topics=8,
            duration=15.0,
            drain_time=10.0,
            publication_rate=3.0,
            seed=11,
        )
        results = compare(base, ["gossip", "fair-gossip", "scribe", "brokers", "dam"])
        return {result.config.system: result for result in results}

    def test_every_system_disseminates(self, comparison):
        for name, result in comparison.items():
            assert result.reliability.delivery_ratio > 0.9, name

    def test_fair_gossip_is_fairer_than_classic(self, comparison):
        fair = comparison["fair-gossip"].fairness.report
        classic = comparison["gossip"].fairness.report
        assert fair.ratio_jain > classic.ratio_jain
        assert fair.wasted_share <= classic.wasted_share + 1e-9

    def test_classic_gossip_is_load_balanced_but_unfair(self, comparison):
        classic = comparison["gossip"].fairness.report
        assert classic.contribution_jain > 0.9
        assert classic.ratio_jain < 0.8

    def test_structured_and_broker_systems_are_least_fair(self, comparison):
        fair = comparison["fair-gossip"].fairness.report
        for name in ("scribe", "brokers"):
            assert comparison[name].fairness.report.ratio_jain < fair.ratio_jain, name

    def test_brokers_concentrate_work_on_non_beneficiaries(self, comparison):
        assert comparison["brokers"].fairness.report.wasted_share > 0.8

    def test_dam_is_fair_for_members(self, comparison):
        assert comparison["dam"].fairness.report.ratio_jain > comparison["scribe"].fairness.report.ratio_jain


class TestFairGossipUnderStress:
    def test_reliability_survives_churn_and_loss(self):
        config = ExperimentConfig(
            name="stress",
            system="fair-gossip",
            nodes=40,
            topics=6,
            duration=15.0,
            drain_time=12.0,
            publication_rate=2.0,
            loss_rate=0.05,
            churn_down_probability=0.03,
            churn_up_probability=0.5,
            fanout=4,
            seed=13,
        )
        result = run_experiment(config)
        assert result.reliability.delivery_ratio > 0.85

    def test_subscription_churn_work_is_accounted(self):
        config = ExperimentConfig(
            name="sub-churn",
            system="dks",
            nodes=32,
            topics=6,
            duration=12.0,
            drain_time=8.0,
            publication_rate=1.0,
            subscription_churn_rate=2.0,
            seed=17,
        )
        result = run_experiment(config, keep_system=True)
        totals = result.system.ledger.totals()
        assert totals.subscription_forwards > 0
        assert totals.subscribe_operations > 32  # initial interest + churn

    def test_interest_change_mid_run_shifts_contribution(self):
        system = build_gossip_system(nodes=30, seed=19, fair=True)
        popularity = TopicPopularity.uniform(1, prefix="only")
        topic = popularity.topics[0]
        # Phase 1: the first ten nodes are interested.
        for node_id in system.node_ids()[:10]:
            system.subscribe(node_id, TopicFilter(topic))
        workload = TopicPublicationWorkload(
            system, system.simulator, popularity, publishers=system.node_ids()[:3], rate=3.0
        )
        workload.start(duration=20.0, start_at=1.0)
        system.run(until=21.0)
        snapshot = system.ledger.snapshot(taken_at=system.simulator.now)
        # Phase 2: a disjoint set of nodes becomes interested instead.
        for node_id in system.node_ids()[:10]:
            system.unsubscribe(node_id, TopicFilter(topic))
        for node_id in system.node_ids()[15:25]:
            system.subscribe(node_id, TopicFilter(topic))
        second = TopicPublicationWorkload(
            system, system.simulator, popularity, publishers=system.node_ids()[:3], rate=3.0
        )
        second.start(duration=25.0, start_at=system.simulator.now + 1.0)
        system.run(until=system.simulator.now + 30.0)
        window = system.ledger.window(snapshot)
        new_interested_work = sum(
            window[node_id].gossip_messages_sent for node_id in system.node_ids()[15:25]
        )
        old_interested_work = sum(
            window[node_id].gossip_messages_sent for node_id in system.node_ids()[:10]
        )
        # The adaptive protocol shifts contribution towards the new beneficiaries.
        assert new_interested_work > old_interested_work

    def test_topic_policy_rewards_subscription_heavy_nodes(self):
        config = ExperimentConfig(
            name="policy",
            system="gossip",
            nodes=36,
            topics=10,
            duration=12.0,
            drain_time=8.0,
            publication_rate=2.0,
            fairness_policy="topic",
            interest_model="zipf",
            max_topics_per_node=8,
            seed=23,
        )
        result = run_experiment(config, keep_system=True)
        ledger = result.system.ledger
        benefits = TOPIC_BASED_POLICY.benefits(ledger)
        heavy = max(ledger.node_ids(), key=lambda node: ledger.account(node).filters_placed)
        light = min(ledger.node_ids(), key=lambda node: ledger.account(node).filters_placed)
        if ledger.account(heavy).filters_placed > ledger.account(light).filters_placed:
            assert benefits[heavy] > benefits[light]


class TestDeterminism:
    def test_whole_experiment_reproducible(self):
        config = ExperimentConfig(name="repro", nodes=20, duration=8.0, drain_time=5.0, seed=29)
        first = run_experiment(config)
        second = run_experiment(config)
        assert first.summary_row() == second.summary_row()
        assert [event.event_id for event in first.published_events] == [
            event.event_id for event in second.published_events
        ]
