"""Tests for the subscription table, matching engines, and the delivery log."""

from __future__ import annotations

import pytest

from repro.pubsub import (
    ContentFilter,
    CountingContentIndex,
    DeliveryLog,
    Event,
    MatchAllFilter,
    MatchingEngine,
    SubscriptionTable,
    TopicFilter,
    TopicIndex,
)


def make_event(event_id="e1", **attributes) -> Event:
    return Event(event_id=event_id, publisher="p", attributes=attributes, published_at=1.0)


class TestSubscriptionTable:
    def test_subscribe_creates_active_record(self):
        table = SubscriptionTable()
        subscription = table.subscribe("a", TopicFilter("news"), timestamp=1.0)
        assert subscription.active
        assert table.active_filter_count("a") == 1
        assert table.subscribers_of_topic("news") == ["a"]

    def test_unsubscribe_deactivates_and_records_lifetime(self):
        table = SubscriptionTable()
        table.subscribe("a", TopicFilter("news"), timestamp=1.0)
        cancelled = table.unsubscribe("a", TopicFilter("news"), timestamp=4.0)
        assert cancelled is not None
        assert not cancelled.active
        assert cancelled.lifetime == 3.0
        assert table.active_filter_count("a") == 0
        assert table.subscribers_of_topic("news") == []

    def test_unsubscribe_without_subscription_is_noop(self):
        table = SubscriptionTable()
        assert table.unsubscribe("a", TopicFilter("news")) is None

    def test_unsubscribe_cancels_oldest_first(self):
        table = SubscriptionTable()
        table.subscribe("a", TopicFilter("news"), timestamp=1.0)
        table.subscribe("a", TopicFilter("news"), timestamp=2.0)
        cancelled = table.unsubscribe("a", TopicFilter("news"), timestamp=3.0)
        assert cancelled.subscribed_at == 1.0
        assert table.active_filter_count("a") == 1

    def test_unsubscribe_all(self):
        table = SubscriptionTable()
        table.subscribe("a", TopicFilter("news"))
        table.subscribe("a", TopicFilter("sports"))
        cancelled = table.unsubscribe_all("a", timestamp=9.0)
        assert len(cancelled) == 2
        assert table.active_filter_count("a") == 0

    def test_interested_nodes_uses_filters(self):
        table = SubscriptionTable()
        table.subscribe("a", TopicFilter("news"))
        table.subscribe("b", ContentFilter.build(level=3))
        table.subscribe("c", TopicFilter("sports"))
        interested = table.interested_nodes(make_event(topic="news", level=3))
        assert interested == ["a", "b"]

    def test_topics_of_node_and_churn_counts(self):
        table = SubscriptionTable()
        table.subscribe("a", TopicFilter("news"))
        table.subscribe("a", TopicFilter("tech"))
        table.unsubscribe("a", TopicFilter("tech"))
        assert table.topics_of_node("a") == ["news"]
        assert table.churn_counts() == (2, 1)
        assert table.nodes_with_subscriptions() == ["a"]
        assert len(table) == 1


class TestTopicIndex:
    def test_match_by_topic(self):
        index = TopicIndex()
        index.add("a", TopicFilter("news"))
        index.add("b", TopicFilter("news"))
        index.add("c", TopicFilter("sports"))
        assert index.match(make_event(topic="news")) == {"a", "b"}
        assert index.subscribers("sports") == {"c"}

    def test_remove(self):
        index = TopicIndex()
        index.add("a", TopicFilter("news"))
        index.remove("a", TopicFilter("news"))
        assert index.match(make_event(topic="news")) == set()

    def test_event_without_topic_matches_nothing(self):
        index = TopicIndex()
        index.add("a", TopicFilter("news"))
        assert index.match(make_event(level=1)) == set()

    def test_counts(self):
        index = TopicIndex()
        index.add("a", TopicFilter("news"))
        index.add("b", TopicFilter("news"))
        assert index.topic_count() == 1
        assert index.filter_count() == 2


class TestCountingContentIndex:
    def test_counting_match(self):
        index = CountingContentIndex()
        index.add("a", ContentFilter.build(category="metals", level=5))
        index.add("b", ContentFilter.build(category="metals"))
        assert index.match(make_event(category="metals", level=5)) == {"a", "b"}
        assert index.match(make_event(category="metals", level=4)) == {"b"}

    def test_zero_condition_filter_matches_all(self):
        index = CountingContentIndex()
        index.add("a", ContentFilter())
        assert index.match(make_event(whatever=1)) == {"a"}

    def test_remove(self):
        index = CountingContentIndex()
        filter_ = ContentFilter.build(category="x")
        index.add("a", filter_)
        index.remove("a", filter_)
        assert index.match(make_event(category="x")) == set()
        assert index.filter_count() == 0

    def test_duplicate_add_is_idempotent(self):
        index = CountingContentIndex()
        filter_ = ContentFilter.build(category="x")
        index.add("a", filter_)
        index.add("a", filter_)
        assert index.filter_count() == 1


class TestMatchingEngine:
    def test_routes_to_both_indexes_and_fallback(self):
        engine = MatchingEngine()
        engine.add("a", TopicFilter("news"))
        engine.add("b", ContentFilter.build(level=2))
        engine.add("c", MatchAllFilter())
        matched = engine.match(make_event(topic="news", level=2))
        assert matched == {"a", "b", "c"}
        assert engine.registered_filter_count() == 3

    def test_remove_each_kind(self):
        engine = MatchingEngine()
        engine.add("a", TopicFilter("news"))
        engine.add("b", ContentFilter.build(level=2))
        engine.add("c", MatchAllFilter())
        engine.remove("a", TopicFilter("news"))
        engine.remove("b", ContentFilter.build(level=2))
        engine.remove("c", MatchAllFilter())
        assert engine.match(make_event(topic="news", level=2)) == set()


class TestDeliveryLog:
    def test_records_and_deduplicates(self):
        log = DeliveryLog()
        event = make_event()
        assert log.record("a", event, delivered_at=2.0) is not None
        assert log.record("a", event, delivered_at=3.0) is None
        assert log.delivery_count("a") == 1
        assert log.delivered("a", "e1")
        assert log.total_deliveries() == 1

    def test_per_event_and_per_node_views(self):
        log = DeliveryLog()
        event = make_event()
        other = make_event(event_id="e2")
        log.record("a", event, delivered_at=2.0)
        log.record("b", event, delivered_at=2.5)
        log.record("a", other, delivered_at=3.0)
        assert {record.node_id for record in log.deliveries_of_event("e1")} == {"a", "b"}
        assert len(log.deliveries_by_node("a")) == 2
        assert log.nodes() == ["a", "b"]
        assert log.event_ids() == ["e1", "e2"]

    def test_latencies(self):
        log = DeliveryLog()
        log.record("a", make_event(), delivered_at=2.0)
        assert log.latencies() == [1.0]
        record = log.deliveries_by_node("a")[0]
        assert record.latency == 1.0
