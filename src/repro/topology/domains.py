"""Compiled domain layout: membership, bridges, and resolved link effects.

:func:`compile_domain_map` turns a validated
:class:`~repro.topology.spec.TopologySpec` plus the run's node ids into a
:class:`DomainMap` — the object every consumer of the topology layer works
with: membership scoping reads ``members``/``domain_of``, the geo profile
reads ``link``, the bridge router reads ``bridges``, and the fault layer
resolves domain-level partitions through ``partition_assignment``.

All selection here is deterministic and seed-independent: bridge ranking
hashes ``domain + "/" + node`` with sha256 (Python's own ``hash`` is salted
per process and must never decide anything reproducible), and auto-generated
domains are contiguous blocks of the sorted node ids, so ``node-000`` ...
``node-005`` land in ``d0`` — the layout a reader of a report expects.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .spec import TopologyError, TopologySpec, _suggest

__all__ = ["DomainMap", "compile_domain_map"]


def _sha256_rank(domain: str, node: str) -> str:
    return hashlib.sha256(f"{domain}/{node}".encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class DomainMap:
    """The compiled, immutable form of a multi-domain topology.

    Attributes
    ----------
    spec:
        The spec this map was compiled from.
    domains:
        Sorted domain names.
    members:
        ``domain -> sorted member node ids`` (every node in exactly one).
    domain_of:
        ``node -> domain`` (inverse of ``members``).
    bridges:
        ``domain -> bridge node ids`` in selection-rank order (the first
        entry is the domain's primary bridge).
    links:
        ``(domain_a, domain_b)`` (sorted pair) ``-> (latency, loss)`` for
        every pair with non-default effects.
    """

    spec: TopologySpec
    domains: Tuple[str, ...]
    members: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    domain_of: Dict[str, str] = field(default_factory=dict)
    bridges: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    links: Dict[Tuple[str, str], Tuple[float, float]] = field(default_factory=dict)

    def domain(self, node_id: str) -> Optional[str]:
        """Domain of ``node_id`` (``None`` for nodes outside the map)."""
        return self.domain_of.get(node_id)

    def link(self, domain_a: str, domain_b: str) -> Tuple[float, float]:
        """``(extra_latency, loss_rate)`` for the (unordered) domain pair."""
        key = (domain_a, domain_b) if domain_a <= domain_b else (domain_b, domain_a)
        explicit = self.links.get(key)
        if explicit is not None:
            return explicit
        if domain_a == domain_b:
            return (0.0, 0.0)
        return (self.spec.cross_latency, self.spec.cross_loss)

    def bridge_nodes(self) -> Tuple[str, ...]:
        """Every bridge node id, sorted."""
        return tuple(sorted(node for nodes in self.bridges.values() for node in nodes))

    def partition_assignment(self, domain_names: Sequence[str]) -> Dict[str, int]:
        """Partition map isolating the named domains (group 1) from the rest.

        This is how ``FaultPlan`` partition entries with ``domains=[...]``
        resolve to the node-level group map both network fabrics install.
        """
        unknown = [name for name in domain_names if name not in self.members]
        if unknown:
            raise TopologyError(
                f"unknown partition domain(s) {sorted(unknown)}"
                f"{_suggest(unknown[0], self.domains)}; "
                f"known domains: {', '.join(self.domains)}"
            )
        isolated = set(domain_names)
        return {
            node: 1 if domain in isolated else 0
            for domain, nodes in self.members.items()
            for node in nodes
        }

    def describe(self) -> str:
        """One line per domain: members, bridges, and cross-link defaults."""
        lines = []
        for domain in self.domains:
            nodes = self.members[domain]
            bridges = ", ".join(self.bridges[domain])
            lines.append(f"{domain}: {len(nodes)} node(s), bridges [{bridges}]")
        lines.append(
            f"cross-domain default: latency +{self.spec.cross_latency}, "
            f"loss {self.spec.cross_loss}"
        )
        return "\n".join(lines)


def compile_domain_map(spec: TopologySpec, node_ids: Sequence[str]) -> DomainMap:
    """Compile a spec against the run's node ids; raise :class:`TopologyError`."""
    spec.validate()
    if not spec.enabled:
        raise TopologyError("cannot compile a disabled topology (domains=0, no assignment)")
    ordered_nodes = sorted(node_ids)
    if not ordered_nodes:
        raise TopologyError("topology needs at least one node")

    if spec.assignment:
        domain_of: Dict[str, str] = {}
        known = set(ordered_nodes)
        for node, domain in spec.assignment:
            if node not in known:
                raise TopologyError(
                    f"topology.assignment names unknown node {node!r}"
                    f"{_suggest(node, ordered_nodes)}"
                )
            domain_of[node] = domain
        missing = [node for node in ordered_nodes if node not in domain_of]
        if missing:
            raise TopologyError(
                f"topology.assignment leaves {len(missing)} node(s) unassigned "
                f"(first: {missing[0]!r}); every node needs a domain"
            )
        domains = tuple(sorted(set(domain_of.values())))
        if spec.domains and spec.domains != len(domains):
            raise TopologyError(
                f"topology.domains={spec.domains} but the explicit assignment "
                f"defines {len(domains)} domain(s)"
            )
    else:
        count = spec.domains
        if count > len(ordered_nodes):
            raise TopologyError(
                f"topology.domains={count} exceeds the node count ({len(ordered_nodes)}); "
                "every domain needs at least one member"
            )
        domains = tuple(f"d{index}" for index in range(count))
        domain_of = {
            node: domains[index * count // len(ordered_nodes)]
            for index, node in enumerate(ordered_nodes)
        }

    members: Dict[str, List[str]] = {domain: [] for domain in domains}
    for node in ordered_nodes:
        members[domain_of[node]].append(node)

    bridges: Dict[str, Tuple[str, ...]] = {}
    for domain in domains:
        nodes = members[domain]
        count = min(spec.bridges_per_domain, len(nodes))
        if spec.bridge_policy == "lexical":
            ranked = nodes[:count]
        else:  # sha256 (validated above)
            ranked = sorted(nodes, key=lambda node: _sha256_rank(domain, node))[:count]
        bridges[domain] = tuple(ranked)

    links: Dict[Tuple[str, str], Tuple[float, float]] = {}
    for domain_a, domain_b, latency, loss in spec.geo:
        for name in (domain_a, domain_b):
            if name not in members:
                raise TopologyError(
                    f"topology.geo names unknown domain {name!r}"
                    f"{_suggest(name, domains)}; known domains: {', '.join(domains)}"
                )
        key = (domain_a, domain_b) if domain_a <= domain_b else (domain_b, domain_a)
        links[key] = (float(latency), float(loss))

    return DomainMap(
        spec=spec,
        domains=domains,
        members={domain: tuple(nodes) for domain, nodes in members.items()},
        domain_of=domain_of,
        bridges=bridges,
        links=links,
    )
