"""Experiment F2 (Figure 2): topic-based fairness formula.

Figure 2 defines, for topic-based selection, benefit = delivered events +
placed filters and contribution = published + forwarded messages (including
subscription maintenance).  The experiment gives nodes very different
subscription counts (1..8 topics, Zipf popularity), runs classic and fair
gossip under the *topic-based* policy, and checks that under the fair
protocol a node's contribution tracks its benefit (high rank correlation),
while under the classic protocol contribution is flat regardless of benefit.
"""

from __future__ import annotations

from common import BASE_CONFIG, attach_extra_info, print_results, run_compare
from repro.core import TOPIC_BASED_POLICY


def rank_correlation(xs, ys):
    """Spearman rank correlation without scipy (ties broken by order)."""
    def ranks(values):
        order = sorted(range(len(values)), key=lambda index: values[index])
        result = [0.0] * len(values)
        for rank, index in enumerate(order):
            result[index] = float(rank)
        return result

    if len(xs) < 2:
        return 0.0
    rank_x = ranks(xs)
    rank_y = ranks(ys)
    n = len(xs)
    mean = (n - 1) / 2.0
    cov = sum((rank_x[i] - mean) * (rank_y[i] - mean) for i in range(n))
    var_x = sum((rank_x[i] - mean) ** 2 for i in range(n))
    var_y = sum((rank_y[i] - mean) ** 2 for i in range(n))
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / (var_x * var_y) ** 0.5


def run_topic_fairness():
    base = BASE_CONFIG.with_overrides(
        name="fig2",
        fairness_policy="topic",
        interest_model="zipf",
        max_topics_per_node=8,
        nodes=80,
        duration=20.0,
        drain_time=12.0,
    )
    results = run_compare(base, ["gossip", "fair-gossip"], keep_system=True)
    correlations = {}
    for result in results:
        ledger = result.system.ledger
        contributions = TOPIC_BASED_POLICY.contributions(ledger)
        benefits = TOPIC_BASED_POLICY.benefits(ledger)
        nodes = ledger.node_ids()
        correlations[result.config.name] = rank_correlation(
            [benefits[node] for node in nodes], [contributions[node] for node in nodes]
        )
    return results, correlations


def test_fig2_topic_based_fairness(benchmark):
    results, correlations = benchmark.pedantic(run_topic_fairness, rounds=1, iterations=1)
    print_results(
        "Figure 2 — topic-based policy: contribution should track benefit (#delivered + #filters)",
        results,
        extra_columns={name: {"benefit_contribution_corr": corr} for name, corr in correlations.items()},
    )
    attach_extra_info(benchmark, results)
    benchmark.extra_info["correlations"] = {k: round(v, 4) for k, v in correlations.items()}
    fair_corr = correlations["fig2/fair-gossip"]
    classic_corr = correlations["fig2/gossip"]
    # Fair gossip couples contribution to benefit much more tightly.
    assert fair_corr > classic_corr
    assert fair_corr > 0.5
