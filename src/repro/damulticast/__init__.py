"""Data-aware multicast baseline (§4.2, reference [3])."""

from .dam import DamNode, DataAwareMulticastSystem

__all__ = ["DamNode", "DataAwareMulticastSystem"]
