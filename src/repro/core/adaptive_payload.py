"""Adaptive gossip message size control (challenge 2 and 4 of §5.2).

The second contribution lever offered by the paper is the *gossip message
size*: "by selecting more or less messages to forward, the contribution of
the sender can also be modulated" (Figure 3).  The controller mirrors the
fanout controller — the number of events packed into each gossip message is
scaled by the node's relative benefit — but with one extra input: the
observed buffer backlog.  Shrinking the payload of a node that currently
holds many undelivered fresh events would delay dissemination for everyone,
so the recommendation is floored by the backlog-driven minimum.

The answer to "is there any requirement on the gossip message size?" is the
same kind of constraint as for the fanout: the *system-wide* event
throughput (average payload × average fanout per round) must not drop below
the publication rate, otherwise buffers grow without bound.  The controller
therefore never recommends less than ``min_payload`` and exposes its history
so benchmark C2 can measure convergence and benchmark C3 the reliability
cliff when the floor is set too low.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .estimators import BenefitEstimator, Ewma

__all__ = ["AdaptivePayloadController", "PayloadSchedule"]


@dataclass(frozen=True)
class PayloadSchedule:
    """Allowed range for the number of events per gossip message."""

    base_payload: int = 8
    min_payload: int = 1
    max_payload: int = 32

    def __post_init__(self) -> None:
        if self.min_payload <= 0:
            raise ValueError("min_payload must be positive")
        if not self.min_payload <= self.base_payload <= self.max_payload:
            raise ValueError("require min_payload <= base_payload <= max_payload")

    def clamp(self, value: float) -> int:
        """Round and clamp a raw recommendation into the allowed range."""
        return int(min(self.max_payload, max(self.min_payload, round(value))))


class AdaptivePayloadController:
    """Per-node gossip payload-size controller.

    Parameters
    ----------
    schedule:
        Allowed payload range and neutral operating point.
    estimator:
        Benefit estimator shared with the fanout controller (so both levers
        respond to the same benefit signal).
    smoothing:
        EWMA weight on the raw recommendation.
    backlog_fraction:
        Fraction of the current fresh-event backlog that must fit into one
        round's payload regardless of fairness, so low-benefit nodes still
        drain events they are momentarily responsible for.
    """

    def __init__(
        self,
        schedule: Optional[PayloadSchedule] = None,
        estimator: Optional[BenefitEstimator] = None,
        smoothing: float = 0.5,
        backlog_fraction: float = 0.25,
        telemetry=None,
        telemetry_tags: Optional[dict] = None,
    ) -> None:
        if not 0.0 <= backlog_fraction <= 1.0:
            raise ValueError("backlog_fraction must be within [0, 1]")
        self.schedule = schedule if schedule is not None else PayloadSchedule()
        self.estimator = estimator if estimator is not None else BenefitEstimator()
        self._smoothed = Ewma(alpha=smoothing)
        self._current = self.schedule.base_payload
        self.backlog_fraction = backlog_fraction
        self.history: List[int] = []
        #: Optional telemetry gauge mirroring the live recommendation, so
        #: snapshots expose each node's current payload size mid-run.
        self._gauge = (
            telemetry.gauge("controller.payload", **(telemetry_tags or {}))
            if telemetry is not None
            else None
        )
        if self._gauge is not None:
            # Publish the neutral operating point immediately so snapshots
            # taken before the first adaptation (or in ablations that never
            # adapt this lever) show the effective value, not 0.
            self._gauge.set(self._current)

    # ----------------------------------------------------------- observing

    def observe_round(self, own_deliveries: float, backlog: int = 0) -> None:
        """Record the finished round (deliveries and current buffer backlog)."""
        self.estimator.observe_own_round(own_deliveries)
        self._recompute(backlog)

    def observe_peer_rate(self, rate: float) -> None:
        """Record a peer's advertised benefit rate."""
        self.estimator.observe_peer_rate(rate)

    def _recompute(self, backlog: int) -> None:
        raw = self.schedule.base_payload * self.estimator.relative_benefit()
        smoothed = self._smoothed.observe(raw)
        backlog_floor = min(
            self.schedule.max_payload, int(round(backlog * self.backlog_fraction))
        )
        self._current = self.schedule.clamp(max(smoothed, backlog_floor))
        self.history.append(self._current)
        if self._gauge is not None:
            self._gauge.set(self._current)

    # ------------------------------------------------------------- reading

    @property
    def current_payload(self) -> int:
        """Events per gossip message to use in the next round."""
        return self._current

    def rounds_to_converge(self, target: Optional[int] = None, stable_rounds: int = 5) -> Optional[int]:
        """Rounds until ``stable_rounds`` consecutive identical recommendations."""
        if stable_rounds <= 0:
            raise ValueError("stable_rounds must be positive")
        history = self.history
        for index in range(len(history) - stable_rounds + 1):
            window = history[index : index + stable_rounds]
            if len(set(window)) == 1 and (target is None or window[0] == target):
                return index + 1
        return None
