"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import pytest

# Allow running the tests from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # pragma: no cover - environment shim
    sys.path.insert(0, _SRC)

from repro.core import WorkLedger
from repro.pubsub import DeliveryLog
from repro.sim import Network, Simulator


@pytest.fixture
def simulator() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=42)


@pytest.fixture
def network(simulator: Simulator) -> Network:
    """A loss-free network attached to the simulator fixture."""
    return Network(simulator)


@pytest.fixture
def ledger() -> WorkLedger:
    """An empty accounting ledger."""
    return WorkLedger()


@pytest.fixture
def delivery_log() -> DeliveryLog:
    """An empty delivery log."""
    return DeliveryLog()


def build_gossip_system(
    nodes: int = 24,
    seed: int = 1,
    fair: bool = False,
    fanout: int = 3,
    gossip_size: int = 8,
    round_period: float = 1.0,
    membership: str = "cyclon",
    loss_rate: float = 0.0,
):
    """Helper used by protocol and integration tests to build small systems."""
    from repro.core import FairGossipSystem
    from repro.gossip import GossipSystem
    from repro.membership import cyclon_provider, full_membership_provider, lpbcast_provider
    from repro.sim import BernoulliLoss, NoLoss

    simulator = Simulator(seed=seed)
    net = Network(simulator, loss_model=BernoulliLoss(loss_rate) if loss_rate else NoLoss())
    node_ids = [f"node-{index}" for index in range(nodes)]
    if membership == "full":
        provider = full_membership_provider(net)
    elif membership == "lpbcast":
        provider = lpbcast_provider()
    else:
        provider = cyclon_provider()
    kwargs = {"fanout": fanout, "gossip_size": gossip_size, "round_period": round_period}
    cls = FairGossipSystem if fair else GossipSystem
    return cls(simulator, net, node_ids, membership_provider=provider, node_kwargs=kwargs)
