"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    WorkLedger,
    contribution_benefit_ratios,
    gini_coefficient,
    jain_index,
    smoothed_ratios,
    wasted_contribution_share,
)
from repro.dht import IdSpace, PastryRouter
from repro.gossip import EventBuffer
from repro.membership import NodeDescriptor, PartialView
from repro.pubsub import (
    AttributeCondition,
    ContentFilter,
    Event,
    InterestFunction,
    TopicFilter,
    TopicHierarchy,
    topic_path,
)
from repro.sim.metrics import percentile
from repro.sim.rng import zipf_weights

# Bounded non-negative floats for metric inputs.
values_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)

node_values_strategy = st.dictionaries(
    st.text(alphabet="abcdefgh", min_size=1, max_size=4),
    st.floats(min_value=0.0, max_value=1e5, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=20,
)


class TestFairnessIndexProperties:
    @given(values_strategy)
    def test_jain_index_bounds(self, values):
        index = jain_index(values)
        assert 0.0 <= index <= 1.0 + 1e-9

    @given(st.floats(min_value=0.01, max_value=1e5), st.integers(min_value=1, max_value=30))
    def test_jain_index_is_one_for_equal_values(self, value, count):
        assert abs(jain_index([value] * count) - 1.0) < 1e-9

    @given(values_strategy)
    def test_gini_bounds(self, values):
        coefficient = gini_coefficient(values)
        assert -1e-9 <= coefficient <= 1.0

    @given(values_strategy, st.floats(min_value=1.001, max_value=10.0))
    def test_jain_index_scale_invariant(self, values, scale):
        original = jain_index(values)
        scaled = jain_index([value * scale for value in values])
        assert abs(original - scaled) < 1e-6

    @given(node_values_strategy, node_values_strategy)
    def test_ratios_nonnegative_and_cover_all_nodes(self, contributions, benefits):
        ratios = contribution_benefit_ratios(contributions, benefits)
        assert set(ratios) == set(contributions) | set(benefits)
        assert all(value >= 0 for value in ratios.values())
        smoothed = smoothed_ratios(contributions, benefits)
        assert all(value >= 0 for value in smoothed.values())

    @given(node_values_strategy, node_values_strategy)
    def test_wasted_share_is_a_fraction(self, contributions, benefits):
        share = wasted_contribution_share(contributions, benefits)
        assert 0.0 <= share <= 1.0

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=50),
           st.floats(min_value=0.0, max_value=1.0))
    def test_percentile_within_sample_range(self, values, quantile):
        ordered = sorted(values)
        result = percentile(ordered, quantile)
        assert ordered[0] - 1e-9 <= result <= ordered[-1] + 1e-9

    @given(st.integers(min_value=1, max_value=200), st.floats(min_value=0.0, max_value=3.0))
    def test_zipf_weights_sum_to_one(self, count, exponent):
        weights = zipf_weights(count, exponent)
        assert abs(sum(weights) - 1.0) < 1e-9
        assert all(weight > 0 for weight in weights)


class TestLedgerProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["publish", "gossip", "deliver", "subscribe", "unsubscribe"]),
                st.sampled_from(["a", "b", "c"]),
            ),
            max_size=100,
        )
    )
    def test_counters_never_negative_and_totals_match(self, operations):
        ledger = WorkLedger()
        for operation, node in operations:
            if operation == "publish":
                ledger.record_publish(node)
            elif operation == "gossip":
                ledger.record_gossip_send(node, messages=1, events=2, size=2)
            elif operation == "deliver":
                ledger.record_delivery(node)
            elif operation == "subscribe":
                ledger.record_subscribe(node)
            else:
                ledger.record_unsubscribe(node)
        totals = ledger.totals()
        for node in ledger.node_ids():
            account = ledger.account(node)
            assert account.filters_placed >= 0
            assert account.events_delivered >= 0
        assert totals.events_published == sum(
            ledger.account(node).events_published for node in ledger.node_ids()
        )


class TestPartialViewProperties:
    @given(
        st.lists(
            st.tuples(st.text(alphabet="nodexyz0123456789", min_size=1, max_size=6),
                      st.integers(min_value=0, max_value=50)),
            max_size=60,
        ),
        st.integers(min_value=1, max_value=12),
    )
    def test_capacity_and_owner_exclusion_invariants(self, descriptors, capacity):
        view = PartialView("owner", capacity=capacity)
        for name, age in descriptors:
            view.add(NodeDescriptor(node_id=name, age=age))
        assert len(view) <= capacity
        assert "owner" not in view
        assert len(set(view.node_ids())) == len(view.node_ids())

    @given(st.integers(min_value=1, max_value=10), st.integers(min_value=0, max_value=20))
    def test_sample_never_exceeds_request_or_content(self, capacity, count):
        view = PartialView("owner", capacity=capacity)
        for index in range(capacity):
            view.add(NodeDescriptor(f"n{index}"))
        sample = view.sample(random.Random(0), count)
        assert len(sample) <= min(count, len(view))
        assert len(set(sample)) == len(sample)


class TestBufferProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=500), max_size=120),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=10),
    )
    def test_buffer_never_exceeds_capacity_and_never_duplicates(self, ids, capacity, select_count):
        buffer = EventBuffer(capacity=capacity, max_rounds=5)
        for identifier in ids:
            event = Event(event_id=f"e{identifier}", publisher="p", attributes={})
            buffer.add(event, received_at=0.0)
        assert len(buffer) <= capacity
        selection = buffer.select(select_count, random.Random(1))
        assert len(selection) <= select_count
        assert len({event.event_id for event in selection}) == len(selection)


class TestFilterProperties:
    @given(
        st.dictionaries(
            st.sampled_from(["topic", "level", "category"]),
            st.one_of(st.integers(min_value=-10, max_value=10), st.sampled_from(["a", "b", "c"])),
            max_size=3,
        )
    )
    def test_topic_filter_matches_iff_topic_equal(self, attributes):
        event = Event(event_id="e", publisher="p", attributes=attributes)
        filter_ = TopicFilter("a")
        assert filter_.matches(event) == (attributes.get("topic") == "a")

    @given(st.integers(min_value=-20, max_value=20), st.integers(min_value=-20, max_value=20))
    def test_content_filter_conjunction_semantics(self, level, threshold):
        event = Event(event_id="e", publisher="p", attributes={"level": level, "category": "x"})
        filter_ = ContentFilter(
            conditions=(
                AttributeCondition("category", "==", "x"),
                AttributeCondition("level", ">=", threshold),
            )
        )
        assert filter_.matches(event) == (level >= threshold)

    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=0, max_size=6))
    def test_interest_function_is_union_of_filters(self, topics):
        interest = InterestFunction([TopicFilter(topic) for topic in topics])
        probe = Event(event_id="e", publisher="p", attributes={"topic": "a"})
        assert interest.is_interested(probe) == ("a" in topics)
        assert interest.filter_count == len(set(topics))


class TestTopicHierarchyProperties:
    @given(
        st.lists(
            st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=4).map("/".join),
            min_size=1,
            max_size=15,
        )
    )
    def test_ancestors_always_present(self, names):
        hierarchy = TopicHierarchy(names)
        for topic in hierarchy:
            for ancestor in hierarchy.ancestors(topic.name):
                assert ancestor.name in hierarchy
        # Every name's full prefix chain is contained.
        for name in names:
            for prefix in topic_path(name):
                assert prefix in hierarchy


class TestPastryProperties:
    @settings(deadline=None, max_examples=30)
    @given(st.integers(min_value=2, max_value=60), st.text(min_size=1, max_size=10))
    def test_routing_always_terminates_at_unique_root(self, node_count, key_name):
        node_ids = [f"n{index}" for index in range(node_count)]
        router = PastryRouter(node_ids)
        key = router.key_for(key_name)
        root = router.root_of(key)
        for start in node_ids[: min(10, node_count)]:
            result = router.route(start, key)
            assert result.root == root
            assert result.path[-1] == root
            assert len(result.path) == len(set(result.path))  # no loops

    @given(st.text(min_size=1, max_size=12), st.text(min_size=1, max_size=12))
    def test_shared_prefix_symmetry(self, left_name, right_name):
        space = IdSpace()
        left = space.hash_name(left_name)
        right = space.hash_name(right_name)
        assert space.shared_prefix_length(left, right) == space.shared_prefix_length(right, left)
        assert space.distance(left, right) == space.distance(right, left)


class TestLazyBroadcastProperties:
    """Hypothesis sweeps over the lazy-push parameter space (fanout/ALPHA/loss).

    The delivery-ratio-vs-push comparison lives in ``test_lazy_broadcast``
    on pinned seeds; these sweeps check the *structural* invariants that
    must hold for every parameter combination: store-set size and
    determinism, the infection estimator's bounds, and — on tiny end-to-end
    simulations — store occupancy, at-most-once delivery, and recovery
    counter consistency.
    """

    @settings(deadline=None, max_examples=40)
    @given(
        st.integers(min_value=1, max_value=40),
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    )
    def test_store_set_size_and_determinism(self, node_count, alpha):
        from math import ceil

        from repro.gossip import lazy_store_ids

        node_ids = [f"node-{index:03d}" for index in range(node_count)]
        selected = lazy_store_ids(node_ids, alpha)
        assert selected == lazy_store_ids(reversed(node_ids), alpha)
        assert selected <= frozenset(node_ids)
        assert len(selected) == max(1, ceil(alpha * node_count))

    @settings(deadline=None, max_examples=40)
    @given(
        st.integers(min_value=2, max_value=5000),
        st.integers(min_value=1, max_value=12),
    )
    def test_eager_budget_is_bounded_and_monotone_in_fanout(self, population, fanout):
        from math import ceil, log

        from repro.gossip import eager_push_rounds

        rounds = eager_push_rounds(population, fanout)
        # Never fewer than two rounds, never more than the fanout-2 doubling
        # time of the whole population (the loosest sensible upper bound).
        assert 2 <= rounds <= ceil(log(max(2, population)) / log(2)) + 2
        assert eager_push_rounds(population, fanout + 1) <= rounds

    @settings(deadline=None, max_examples=8)
    @given(
        st.integers(min_value=1, max_value=4),
        st.sampled_from([0.125, 0.25, 0.5, 1.0]),
        st.floats(min_value=0.0, max_value=0.3, allow_nan=False),
        st.integers(min_value=0, max_value=2**16),
    )
    def test_tiny_run_invariants_across_the_parameter_space(
        self, fanout, alpha, loss, seed
    ):
        from math import ceil

        from repro.experiments import ExperimentConfig, run_experiment

        config = ExperimentConfig(
            name="lazy-prop-sweep",
            system="lazy-push",
            nodes=8,
            topics=3,
            interest_model="zipf",
            max_topics_per_node=2,
            publication_rate=2.0,
            duration=3.0,
            drain_time=4.0,
            fanout=fanout,
            gossip_size=4,
            seed=seed,
            loss_rate=loss,
            alpha=alpha,
        )
        result = run_experiment(config, keep_system=True)
        assert 0.0 <= result.delivery_ratio <= 1.0
        nodes = list(result.system.nodes.values())
        assert sum(node.is_store for node in nodes) == max(1, ceil(alpha * len(nodes)))
        for node in nodes:
            assert len(node.store) <= node.store_capacity
            if not node.is_store:
                assert not node.store
            records = node.delivery_log.deliveries_by_node(node.node_id)
            assert len(records) == len({record.event_id for record in records})
        # Every served pull answers an issued one, and pulls only exist
        # where digests circulate.
        issued = sum(node.pulls_issued for node in nodes)
        served = sum(node.pulls_served for node in nodes)
        assert served <= issued
        if issued == 0:
            assert sum(node.recoveries for node in nodes) == 0
