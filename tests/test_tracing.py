"""Tests for the causal dissemination tracing layer.

Covers the determinism contract (byte-identical trace JSONL across serial
reruns at a pinned seed, deterministic head sampling), observability-only
guarantees (cache keys and physics untouched), infection-tree correctness on
the ``smoke-lazy`` acceptance scenario (root is the publisher, every
delivered node chains back to the root, pull recoveries attributed), the
wire-codec trace extension (untraced frames byte-identical), and a
sim-vs-live span-sequence parity check on the same stack.
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro.experiments import run_experiment
from repro.experiments.cache import config_hash
from repro.experiments.scenarios import get_scenario
from repro.pubsub.events import Event
from repro.runtime import MemoryTransport, NodeHost, decode_message, encode_message
from repro.sim.network import Message
from repro.tracing import (
    DELIVER,
    DROP,
    DUPLICATE,
    PUBLISH,
    PULL_RECOVER,
    RECEIVE,
    SPAN_KINDS,
    JsonlTraceSink,
    MemoryTraceSink,
    SpanRecord,
    TraceContext,
    TraceRecorder,
    TraceSampler,
    Tracer,
    analyze_spans,
    read_spans_jsonl,
    render_trace,
)

#: Documented tolerance of the sim-vs-live trace parity check: both engines
#: run the same lazy-push node classes with the same seed, so the *kinds* of
#: spans agree, but live timing is wall-clock — round interleavings differ,
#: so per-kind span counts drift.  The structural invariants (publish roots,
#: deliveries chaining to their root) must hold exactly in both worlds; only
#: the volume ratio is toleranced, and generously, because a live run that
#: produced no receive/deliver spans at all would still fail it.
PARITY_SPAN_RATIO_TOLERANCE = 0.5


def traced_smoke_lazy(sample_rate: float = 1.0, sink=None, keep_system: bool = False):
    """One pinned-seed smoke-lazy run with tracing; returns (result, tracer)."""
    config = get_scenario("smoke-lazy").config
    tracer = Tracer(sink if sink is not None else MemoryTraceSink(), sample_rate=sample_rate)
    result = run_experiment(config, keep_system=keep_system, tracer=tracer)
    return result, tracer


class TestSampler:
    def test_deterministic_and_rate_monotone(self):
        sampler = TraceSampler(0.3, salt="s")
        ids = [f"node-{i:03d}#{j}" for i in range(20) for j in range(5)]
        first = [sampler.sampled(i) for i in ids]
        second = [TraceSampler(0.3, salt="s").sampled(i) for i in ids]
        assert first == second
        # Head decisions are per-id hash thresholds, so raising the rate
        # only ever adds ids, never removes them.
        kept_low = {i for i in ids if TraceSampler(0.2).sampled(i)}
        kept_high = {i for i in ids if TraceSampler(0.6).sampled(i)}
        assert kept_low <= kept_high
        assert 0 < len(kept_high) < len(ids)

    def test_edge_rates(self):
        assert not TraceSampler(0.0).sampled("anything")
        assert TraceSampler(1.0).sampled("anything")
        with pytest.raises(ValueError):
            TraceSampler(1.5)
        with pytest.raises(ValueError):
            TraceSampler(-0.1)


class TestSpanRecords:
    def test_round_trip_and_schema(self):
        record = SpanRecord(
            ts=1.5, kind=RECEIVE, trace_id="e#1", span_id=7, node="n1",
            parent_id=3, hops=2, details={"peer": "n0"},
        )
        payload = record.to_dict()
        assert payload["schema"] == "trace-span/v1"
        assert SpanRecord.from_dict(payload) == record
        # Roots omit parent_id entirely (canonical bytes stay minimal).
        assert "parent_id" not in SpanRecord(
            ts=0.0, kind=PUBLISH, trace_id="e", span_id=0, node="n"
        ).to_dict()

    def test_jsonl_sink_and_reader(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlTraceSink(path)
        tracer = Tracer(sink, sample_rate=1.0)
        root = tracer.emit(PUBLISH, "e#1", "n0")
        tracer.emit(RECEIVE, "e#1", "n1", parent_id=root, hops=1, peer="n0")
        tracer.close()
        spans = read_spans_jsonl(path)
        assert [span.kind for span in spans] == [PUBLISH, RECEIVE]
        assert spans[1].parent_id == spans[0].span_id

    def test_reader_rejects_foreign_lines(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"schema":"other/v1"}\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            read_spans_jsonl(path)


class TestWireTraceExtension:
    MESSAGE = dict(sender="a", recipient="b", kind="status", payload={"x": 1})

    def test_untraced_frames_byte_identical(self):
        plain = Message(**self.MESSAGE)
        assert encode_message(plain) == encode_message(Message(**self.MESSAGE))
        assert b"trace" not in encode_message(plain)

    def test_traced_round_trip(self):
        contexts = (TraceContext("e#1", 4, 2), TraceContext("e#2", 9, 1))
        body = encode_message(Message(**self.MESSAGE, trace=contexts))
        decoded = decode_message(body)
        assert decoded.trace == contexts
        # An untraced frame decodes to trace=None, not an empty tuple.
        assert decode_message(encode_message(Message(**self.MESSAGE))).trace is None


class TestObservabilityOnly:
    """Tracing must not move physics, cache identity, or RNG draws."""

    def test_cache_key_and_results_unchanged(self):
        config = get_scenario("smoke-lazy").config
        untraced_hash = config_hash(config)
        untraced = run_experiment(config)
        traced, tracer = traced_smoke_lazy(sample_rate=1.0)
        assert tracer.spans_emitted > 0
        # Tracing lives outside the config, so the cache key cannot move...
        assert config_hash(traced.config) == untraced_hash
        # ...and the measured physics are identical, artifact-for-artifact.
        assert traced.to_dict() == untraced.to_dict()

    def test_rate_zero_emits_nothing_and_changes_nothing(self):
        untraced = run_experiment(get_scenario("smoke-lazy").config)
        traced, tracer = traced_smoke_lazy(sample_rate=0.0)
        assert tracer.spans_emitted == 0
        assert traced.to_dict() == untraced.to_dict()


class TestTraceDeterminism:
    def test_byte_identical_jsonl_across_serial_reruns(self, tmp_path):
        streams = []
        for index in range(2):
            path = str(tmp_path / f"run{index}.jsonl")
            _, tracer = traced_smoke_lazy(sink=JsonlTraceSink(path))
            tracer.close()
            with open(path, "rb") as handle:
                streams.append(handle.read())
        assert streams[0] == streams[1]
        assert streams[0]  # non-empty: the scenario really traced spans

    def test_partial_sampling_is_a_subset(self):
        _, full = traced_smoke_lazy(sample_rate=1.0)
        _, partial = traced_smoke_lazy(sample_rate=0.5)
        full_ids = {span.trace_id for span in full.sink.records()}
        partial_ids = {span.trace_id for span in partial.sink.records()}
        assert partial_ids < full_ids
        assert partial_ids  # the pinned seed samples at least one event


class TestInfectionTree:
    """Acceptance: correct trees for a pinned-seed smoke-lazy run."""

    @pytest.fixture(scope="class")
    def analysis(self):
        result, tracer = traced_smoke_lazy(keep_system=True)
        return result, analyze_spans(tracer.sink.records())

    def test_every_published_event_is_traced(self, analysis):
        result, trace = analysis
        assert set(trace.events) == {e.event_id for e in result.published_events}

    def test_roots_are_publishers(self, analysis):
        result, trace = analysis
        publishers = {e.event_id: e.publisher for e in result.published_events}
        for event in trace.events.values():
            assert event.root is not None
            assert event.root.kind == PUBLISH
            assert event.root.node == publishers[event.trace_id]
            assert event.root.parent_id is None

    def test_every_delivery_chains_back_to_the_root(self, analysis):
        _, trace = analysis
        total = 0
        for event in trace.events.values():
            assert event.unreachable_deliveries() == []
            total += event.kind_count(DELIVER)
        assert total > 0

    def test_deliveries_match_the_delivery_log(self, analysis):
        result, trace = analysis
        log = result.system.delivery_log
        for event in trace.events.values():
            logged = {record.node_id for record in log.deliveries_of_event(event.trace_id)}
            assert set(event.delivered_nodes()) == logged

    def test_pull_recoveries_present_and_attributed(self, analysis):
        _, trace = analysis
        recoveries = [
            span
            for event in trace.events.values()
            for span in event.spans
            if span.kind == PULL_RECOVER
        ]
        # smoke-lazy loses 15% of frames; the pinned seed recovers via pull.
        assert recoveries
        for span in recoveries:
            assert span.parent_id is not None
            assert span.details.get("peer")
        totals = trace.totals()
        assert totals["pull_recoveries"] == len(recoveries)
        assert totals["drops"] > 0

    def test_totals_are_internally_consistent(self, analysis):
        _, trace = analysis
        totals = trace.totals()
        assert totals["deliveries"] == (
            totals["deliveries_via_eager"] + totals["deliveries_via_pull"]
        )
        assert totals["redundancy_ratio"] == pytest.approx(
            totals["duplicate_receives"] / totals["deliveries"]
        )
        assert 1 <= totals["hops_p50"] <= totals["hops_max"]
        for span in (span for e in trace.events.values() for span in e.spans):
            assert span.kind in SPAN_KINDS

    def test_rendering(self, analysis):
        _, trace = analysis
        first = next(iter(trace.events))
        text = render_trace(trace, event=first)
        assert f"trace {first}" in text
        assert "trace aggregates" in text
        with pytest.raises(ValueError, match="no event"):
            render_trace(trace, event="nope#0")


class TestSimLiveParity:
    def test_live_spans_share_the_sim_structure(self):
        sim_result, sim_tracer = traced_smoke_lazy()
        sim_kinds = {span.kind for span in sim_tracer.sink.records()}

        async def scenario():
            from repro.registry import build_interest_model, build_popularity
            from repro.sim.rng import RngRegistry

            tracer = Tracer(MemoryTraceSink(), sample_rate=1.0)
            spec = get_scenario("smoke-lazy").spec
            host = NodeHost(
                MemoryTransport(),
                seed=spec.seed,
                time_scale=50.0,
                spec=spec,
                tracer=tracer,
            )
            popularity = build_popularity(spec)
            interest = build_interest_model(spec, popularity).assign(
                list(spec.node_ids()),
                RngRegistry(spec.seed).stream("experiment-interest"),
            )
            await host.start()
            interest.apply(host)
            for index, node_id in enumerate(sorted(host.nodes)[:4]):
                host.publish(node_id, topic=popularity.topics[index % 3])
            await host.run_for(0.3)
            await host.stop()
            return tracer

        live_tracer = asyncio.run(scenario())
        live = analyze_spans(live_tracer.sink.records())
        assert len(live.events) == 4
        live_kinds = set()
        for event in live.events.values():
            assert event.root is not None and event.root.kind == PUBLISH
            assert event.unreachable_deliveries() == []
            live_kinds |= {span.kind for span in event.spans}
        # Same protocol, same span vocabulary: everything the live run
        # emitted the simulator emits too (drops/pulls need lossy links, so
        # only the superset direction is exact).
        assert live_kinds <= sim_kinds
        assert {PUBLISH, RECEIVE} <= live_kinds
        totals = live.totals()
        assert totals["deliveries"] > 0
        # Volume parity within the documented tolerance: deliveries per
        # traced event in the same ballpark as the simulator run.
        sim_totals = analyze_spans(sim_tracer.sink.records()).totals()
        sim_per_event = sim_totals["deliveries"] / sim_totals["events_traced"]
        live_per_event = totals["deliveries"] / totals["events_traced"]
        assert live_per_event >= sim_per_event * PARITY_SPAN_RATIO_TOLERANCE

    def test_drop_spans_on_live_dead_recipient(self):
        async def scenario():
            tracer = Tracer(MemoryTraceSink(), sample_rate=1.0)
            host = NodeHost(MemoryTransport(), seed=3, tracer=tracer)
            host.add_nodes(["node-000", "node-001"])
            await host.start()
            host.network.send(
                "node-000",
                "node-999",
                "status",
                payload={"x": 1},
                trace=(TraceContext("e#0", 0, 1),),
            )
            await asyncio.sleep(0.05)
            await host.stop()
            return tracer

        tracer = asyncio.run(scenario())
        drops = [span for span in tracer.sink.records() if span.kind == DROP]
        assert len(drops) == 1
        assert drops[0].node == "node-999"
        assert drops[0].details["reason"] == "dead"


class TestLegacyShim:
    def test_sim_trace_still_importable(self):
        from repro.sim.trace import TraceRecorder as ShimRecorder

        assert ShimRecorder is TraceRecorder
        recorder = ShimRecorder(enabled=True)
        recorder.record(1.0, "fault", node="n1", action="crash")
        assert recorder.count("fault") == 1
        assert recorder.by_node("n1")[0].details["action"] == "crash"


class TestTraceCli:
    def run_cli(self, argv, capsys):
        from repro.experiments.cli import main

        code = main(argv)
        return code, capsys.readouterr().out

    def test_run_trace_and_render(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.jsonl")
        code, out = self.run_cli(
            ["run", "smoke-lazy", "--no-cache", "--trace", trace_path], capsys
        )
        assert code == 0
        assert "trace:" in out
        code, out = self.run_cli(["trace", trace_path, "--max-events", "1"], capsys)
        assert code == 0
        assert "published by" in out
        assert "trace aggregates" in out
        # `report` understands the same stream (aggregate-only rendering).
        code, out = self.run_cli(["report", trace_path], capsys)
        assert code == 0
        assert "per-event dissemination" in out

    def test_missing_artifact_is_a_clean_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit, match="does not exist"):
            self.run_cli(["trace", str(tmp_path / "nope.jsonl")], capsys)
        with pytest.raises(SystemExit, match="does not exist"):
            self.run_cli(["report", str(tmp_path / "nope.jsonl")], capsys)

    def test_wrong_artifact_kind_is_a_clean_error(self, tmp_path, capsys):
        artifact = tmp_path / "results.json"
        artifact.write_text(json.dumps({"weird": True}))
        with pytest.raises(SystemExit, match="unrecognised shape"):
            self.run_cli(["trace", str(artifact)], capsys)
        with pytest.raises(SystemExit, match="unrecognised shape"):
            self.run_cli(["report", str(artifact)], capsys)

    def test_dangling_sample_rate_rejected(self, capsys):
        with pytest.raises(SystemExit, match="--trace-sample-rate"):
            self.run_cli(
                ["run", "smoke-lazy", "--no-cache", "--trace-sample-rate", "0.5"],
                capsys,
            )
