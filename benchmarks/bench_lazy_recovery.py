"""Lazy-push vs plain push under faults: reliability per byte.

The two-phase lazy probabilistic broadcast trades eager redundancy for
digest-driven pull recovery, so its claim is not raw delivery ratio — plain
push already saturates that on friendly networks — but *reliability per
byte*: the delivery ratio divided by the total bytes the network carried.
This benchmark pits ``lazy-push`` against ``gossip`` on identical seeds
under two FaultPlan scenarios:

* **loss** — 15% ambient Bernoulli loss plus a perturbation window adding
  25% extra loss mid-run (the recovery phase's home turf);
* **partition** — 5% ambient loss plus a half/half partition healing
  mid-run (recovery across the healed cut).

Both systems run the same 40-node, 18-round workload with a drain long
enough for the lazy digest cadence to converge.  The headline assertion:
lazy-push beats plain push on mean reliability-per-byte under the loss
scenario.  Writes ``BENCH_lazy_recovery.json`` (override with
``REPRO_BENCH_LAZY_JSON``).

Environment knobs:

* ``REPRO_BENCH_LAZY_SEEDS`` — comma-separated seeds (default ``7,11,23,42``).
* ``REPRO_BENCH_LAZY_NODES`` — population size (default 40).
* ``REPRO_BENCH_LAZY_JSON``  — artifact path.
"""

from __future__ import annotations

import json
import os

from repro.experiments import ExperimentConfig, run_experiment

ARTIFACT = os.environ.get("REPRO_BENCH_LAZY_JSON", "BENCH_lazy_recovery.json")
SEEDS = tuple(
    int(seed) for seed in os.environ.get("REPRO_BENCH_LAZY_SEEDS", "7,11,23,42").split(",")
)
NODES = int(os.environ.get("REPRO_BENCH_LAZY_NODES", "40"))

#: FaultPlan entries per scenario (the encoding ``--fault plan.json`` uses).
SCENARIO_FAULTS = {
    "loss": {
        "loss_rate": 0.15,
        "fault_plan": (
            (("kind", "perturb"), ("at", 3.0), ("until", 7.0), ("loss_rate", 0.25)),
        ),
    },
    "partition": {
        "loss_rate": 0.05,
        "fault_plan": (
            (("kind", "partition"), ("at", 3.0), ("heal_after", 3.0), ("fraction", 0.5)),
        ),
    },
}


def _config(system: str, scenario: str, seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        name=f"lazy-recovery/{scenario}/{system}",
        system=system,
        nodes=NODES,
        topics=6,
        interest_model="zipf",
        max_topics_per_node=4,
        publication_rate=2.0,
        duration=8.0,
        drain_time=10.0,
        fanout=3,
        gossip_size=8,
        seed=seed,
        **SCENARIO_FAULTS[scenario],
    )


def _run(system: str, scenario: str, seed: int) -> dict:
    result = run_experiment(_config(system, scenario, seed), keep_system=True)
    bytes_sent = result.system.network.stats.bytes_sent
    ratio = result.reliability.delivery_ratio
    row = {
        "system": system,
        "scenario": scenario,
        "seed": seed,
        "delivery_ratio": ratio,
        "bytes_sent": bytes_sent,
        "reliability_per_byte": ratio / bytes_sent if bytes_sent else 0.0,
    }
    if system == "lazy-push":
        nodes = result.system.nodes.values()
        row["pulls_issued"] = sum(node.pulls_issued for node in nodes)
        row["pulls_served"] = sum(node.pulls_served for node in nodes)
        row["recoveries"] = sum(node.recoveries for node in nodes)
    return row


def measure() -> dict:
    rows = [
        _run(system, scenario, seed)
        for scenario in SCENARIO_FAULTS
        for seed in SEEDS
        for system in ("gossip", "lazy-push")
    ]

    def mean_rpb(system: str, scenario: str) -> float:
        values = [
            row["reliability_per_byte"]
            for row in rows
            if row["system"] == system and row["scenario"] == scenario
        ]
        return sum(values) / len(values)

    summary = {
        scenario: {
            "push_reliability_per_byte": mean_rpb("gossip", scenario),
            "lazy_reliability_per_byte": mean_rpb("lazy-push", scenario),
            "lazy_advantage": mean_rpb("lazy-push", scenario) / mean_rpb("gossip", scenario),
        }
        for scenario in SCENARIO_FAULTS
    }
    return {
        "schema": "bench-lazy-recovery/v1",
        "nodes": NODES,
        "seeds": list(SEEDS),
        "rows": rows,
        "summary": summary,
    }


def test_lazy_recovery_reliability_per_byte(benchmark):
    artifact = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = artifact["rows"]
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, sort_keys=True, indent=2)
        handle.write("\n")
    print()
    for scenario, entry in artifact["summary"].items():
        print(
            f"{scenario}: push {entry['push_reliability_per_byte']:.3e}, "
            f"lazy {entry['lazy_reliability_per_byte']:.3e} "
            f"({(entry['lazy_advantage'] - 1) * 100:+.1f}% per byte)"
        )
    # The headline claim: under loss, recovery buys more reliability per
    # byte than eager redundancy does.
    assert artifact["summary"]["loss"]["lazy_advantage"] > 1.0
    # Recovery must actually have run (lazy with zero pulls is just push).
    lazy_rows = [row for row in artifact["rows"] if row["system"] == "lazy-push"]
    assert all(row["recoveries"] > 0 for row in lazy_rows)
