"""The tracer facade protocol nodes and networks record through.

One :class:`Tracer` serves a whole run (all nodes share it, exactly like the
telemetry store): it owns the span-id counter, the head-based sampler, the
clock, and the sink.  Protocol code holds ``self.tracer`` (``None`` unless a
run opted in) and pays a single ``is not None`` check on untraced paths —
the same pre-bound-instrument discipline the telemetry layer uses.

The tracer draws no randomness and schedules nothing; with a deterministic
clock (the simulator's) its output is a pure function of the run.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .sampler import TraceSampler
from .spans import DROP, MemoryTraceSink, SpanRecord, TraceSink

__all__ = ["Tracer"]


class Tracer:
    """Emits :class:`~repro.tracing.spans.SpanRecord` objects into a sink.

    Parameters
    ----------
    sink:
        Destination for span records (defaults to a memory ring).
    sample_rate:
        Head-sampling rate in ``[0, 1]``; 0 records nothing new (propagated
        contexts are still honoured), 1 traces every published event.
    time_source:
        Zero-argument callable yielding protocol time; the runner/host
        attach the engine clock via :meth:`attach_clock`.
    salt:
        Sampler salt (see :class:`~repro.tracing.sampler.TraceSampler`).
    """

    def __init__(
        self,
        sink: Optional[TraceSink] = None,
        sample_rate: float = 0.0,
        time_source: Optional[Callable[[], float]] = None,
        salt: str = "",
    ) -> None:
        self.sink = sink if sink is not None else MemoryTraceSink()
        self.sampler = TraceSampler(sample_rate, salt=salt)
        self._time = time_source if time_source is not None else (lambda: 0.0)
        self._next_span_id = 0
        self.spans_emitted = 0

    def attach_clock(self, time_source: Callable[[], float]) -> None:
        """Point the tracer at the engine's clock (simulated or scaled wall)."""
        self._time = time_source

    @property
    def sample_rate(self) -> float:
        """The head-sampling rate this tracer was built with."""
        return self.sampler.rate

    def sampled(self, trace_id: str) -> bool:
        """Head decision for a new trace; made once, at the publisher."""
        return self.sampler.sampled(trace_id)

    def emit(
        self,
        kind: str,
        trace_id: str,
        node: str,
        parent_id: Optional[int] = None,
        hops: int = 0,
        **details: Any,
    ) -> int:
        """Record one span and return its id (for children to parent on)."""
        span_id = self._next_span_id
        self._next_span_id += 1
        self.spans_emitted += 1
        self.sink.emit(
            SpanRecord(
                ts=self._time(),
                kind=kind,
                trace_id=trace_id,
                span_id=span_id,
                node=node,
                parent_id=parent_id,
                hops=hops,
                details=details,
            )
        )
        return span_id

    def record_drop(self, message: Any, reason: str) -> None:
        """Drop spans for every traced event on a dropped message.

        Called by both network fabrics with the in-flight message (duck-typed:
        ``trace`` / ``sender`` / ``recipient`` / ``kind``) and a reason
        (``"lost"``, ``"partition"``, ``"dead"``).  Attribution is to the
        intended recipient — the node the infection failed to reach.
        """
        contexts = getattr(message, "trace", None)
        if not contexts:
            return
        for ctx in contexts:
            self.emit(
                DROP,
                ctx.trace_id,
                message.recipient,
                parent_id=ctx.parent_span,
                hops=ctx.hops,
                peer=message.sender,
                message_kind=message.kind,
                reason=reason,
            )

    def close(self) -> None:
        """Close the underlying sink (flushes JSON-lines files)."""
        self.sink.close()
