"""Tests for the push gossip protocol (Figure 4), the push-pull variant, and the system wrapper."""

from __future__ import annotations

import pytest

from tests.conftest import build_gossip_system
from repro.gossip import GossipSystem, PushGossipNode, PushPullGossipNode
from repro.membership import full_membership_provider
from repro.pubsub import ContentFilter, TopicFilter
from repro.sim import Network, Simulator


def subscribe_everyone(system, topic="news"):
    for node_id in system.node_ids():
        system.subscribe(node_id, TopicFilter(topic))


class TestPushGossipDissemination:
    def test_event_reaches_all_interested_nodes(self):
        system = build_gossip_system(nodes=30, seed=1)
        subscribe_everyone(system)
        system.publish("node-0", topic="news")
        system.run(until=15.0)
        assert system.delivery_log.total_deliveries() == 30

    def test_only_interested_nodes_deliver(self):
        system = build_gossip_system(nodes=20, seed=2)
        for index in range(20):
            topic = "news" if index % 2 == 0 else "sports"
            system.subscribe(f"node-{index}", TopicFilter(topic))
        system.publish("node-0", topic="news")
        system.run(until=15.0)
        delivered_nodes = {
            record.node_id
            for record in system.delivery_log.deliveries_of_event(
                system.delivery_log.event_ids()[0]
            )
        }
        assert delivered_nodes == {f"node-{index}" for index in range(0, 20, 2)}

    def test_uninterested_nodes_still_forward(self):
        system = build_gossip_system(nodes=20, seed=3)
        # Only one subscriber; everyone else has no interest at all.
        system.subscribe("node-1", TopicFilter("news"))
        for _ in range(5):
            system.publish("node-0", topic="news")
        system.run(until=15.0)
        uninterested_work = sum(
            system.ledger.account(f"node-{index}").gossip_messages_sent for index in range(2, 20)
        )
        assert uninterested_work > 0  # the classic-gossip unfairness

    def test_duplicate_events_delivered_once(self):
        system = build_gossip_system(nodes=15, seed=4, fanout=4)
        subscribe_everyone(system)
        event = system.publish("node-0", topic="news")
        system.run(until=20.0)
        for node_id in system.node_ids():
            deliveries = [
                record
                for record in system.delivery_log.deliveries_by_node(node_id)
                if record.event_id == event.event_id
            ]
            assert len(deliveries) <= 1

    def test_zero_fanout_node_sends_nothing(self, simulator, network, ledger, delivery_log):
        node = PushGossipNode(
            "solo",
            simulator,
            network,
            membership_provider=full_membership_provider(network),
            ledger=ledger,
            delivery_log=delivery_log,
            fanout=0,
        )
        node.start()
        node.subscribe(TopicFilter("t"))
        node.publish(
            __import__("repro.pubsub", fromlist=["Event"]).Event(
                event_id="e", publisher="solo", attributes={"topic": "t"}
            )
        )
        simulator.run(until=5.0)
        assert ledger.account("solo").gossip_messages_sent == 0
        assert ledger.account("solo").events_delivered == 1

    def test_reliability_with_message_loss(self):
        system = build_gossip_system(nodes=40, seed=5, fanout=4, loss_rate=0.1)
        subscribe_everyone(system)
        for index in range(5):
            system.publish(f"node-{index}", topic="news")
        system.run(until=30.0)
        assert system.delivery_log.total_deliveries() >= 0.95 * 40 * 5

    def test_dissemination_with_full_membership(self):
        system = build_gossip_system(nodes=25, seed=6, membership="full")
        subscribe_everyone(system)
        system.publish("node-0", topic="news")
        system.run(until=12.0)
        assert system.delivery_log.total_deliveries() == 25

    def test_dissemination_with_lpbcast_membership(self):
        system = build_gossip_system(nodes=25, seed=7, membership="lpbcast")
        subscribe_everyone(system)
        system.publish("node-0", topic="news")
        system.run(until=20.0)
        assert system.delivery_log.total_deliveries() >= 23

    def test_accounting_counts_messages_and_deliveries(self):
        system = build_gossip_system(nodes=10, seed=8)
        subscribe_everyone(system)
        system.publish("node-0", topic="news")
        system.run(until=10.0)
        totals = system.ledger.totals()
        assert totals.events_published == 1
        assert totals.events_delivered == 10
        assert totals.gossip_messages_sent > 0
        assert totals.infrastructure_messages > 0  # CYCLON shuffles

    def test_crashed_node_does_not_deliver(self):
        system = build_gossip_system(nodes=15, seed=9)
        subscribe_everyone(system)
        system.node("node-5").crash()
        system.publish("node-0", topic="news")
        system.run(until=15.0)
        assert not system.delivery_log.delivered("node-5", system.delivery_log.event_ids()[0])
        assert system.delivery_log.total_deliveries() == 14

    def test_content_filter_subscription(self):
        system = build_gossip_system(nodes=12, seed=10)
        for index in range(12):
            system.subscribe(f"node-{index}", ContentFilter.build(category="metals"))
        system.publish("node-0", category="metals", level=3)
        system.publish("node-0", category="energy", level=3)
        system.run(until=15.0)
        assert system.delivery_log.total_deliveries() == 12


class TestGossipSystemApi:
    def test_unsubscribe_stops_future_deliveries(self):
        system = build_gossip_system(nodes=10, seed=11)
        subscribe_everyone(system)
        system.unsubscribe("node-3", TopicFilter("news"))
        system.publish("node-0", topic="news")
        system.run(until=12.0)
        assert system.delivery_log.delivery_count("node-3") == 0
        assert system.subscriptions.active_filter_count("node-3") == 0

    def test_publish_prebuilt_event_is_stamped(self):
        system = build_gossip_system(nodes=5, seed=12)
        from repro.pubsub import Event

        event = Event(event_id="custom", publisher="node-0", attributes={"topic": "t"})
        system.run(until=3.0)
        published = system.publish("node-0", event=event)
        assert published.published_at == system.simulator.now

    def test_run_rounds_advances_by_round_period(self):
        system = build_gossip_system(nodes=5, seed=13, round_period=2.0)
        start = system.simulator.now
        system.run_rounds(3)
        assert system.simulator.now == pytest.approx(start + 6.0)

    def test_interested_nodes_oracle(self):
        system = build_gossip_system(nodes=6, seed=14)
        system.subscribe("node-1", TopicFilter("a"))
        system.subscribe("node-2", TopicFilter("b"))
        event = system.publish("node-0", topic="a")
        assert system.interested_nodes(event) == ["node-1"]
        assert system.topics_of("node-2") == ["b"]

    def test_subscribe_records_filter_count(self):
        system = build_gossip_system(nodes=4, seed=15)
        system.subscribe("node-0", TopicFilter("a"))
        system.subscribe("node-0", TopicFilter("b"))
        system.subscribe("node-0", TopicFilter("a"))  # duplicate
        assert system.ledger.account("node-0").filters_placed == 2

    def test_empty_system_rejected(self, simulator, network):
        with pytest.raises(ValueError):
            GossipSystem(simulator, network, [])

    def test_delivery_callback_invoked(self):
        system = build_gossip_system(nodes=8, seed=16)
        received = []
        system.subscribe(
            "node-2", TopicFilter("news"), callbacks=[lambda node, event: received.append(event)]
        )
        system.publish("node-0", topic="news")
        system.run(until=10.0)
        assert len(received) == 1


class TestPushPullGossip:
    def build(self, nodes=20, seed=20):
        simulator = Simulator(seed=seed)
        network = Network(simulator)
        ids = [f"node-{index}" for index in range(nodes)]
        return GossipSystem(
            simulator,
            network,
            ids,
            node_class=PushPullGossipNode,
            node_kwargs={"fanout": 3, "gossip_size": 8, "round_period": 1.0},
        )

    def test_dissemination_completes(self):
        system = self.build()
        subscribe_everyone(system)
        system.publish("node-0", topic="news")
        system.run(until=25.0)
        assert system.delivery_log.total_deliveries() == 20

    def test_pull_requests_are_exchanged(self):
        system = self.build(nodes=15, seed=21)
        subscribe_everyone(system)
        for index in range(3):
            system.publish(f"node-{index}", topic="news")
        system.run(until=20.0)
        served = sum(system.node(node_id).pull_requests_served for node_id in system.node_ids())
        sent = sum(system.node(node_id).pull_requests_sent for node_id in system.node_ids())
        assert served > 0 and sent > 0

    def test_digest_traffic_is_smaller_than_push_payloads(self):
        pushpull = self.build(nodes=20, seed=22)
        subscribe_everyone(pushpull)
        for index in range(10):
            pushpull.publish("node-0", topic="news", size=10)
        pushpull.run(until=25.0)

        push = build_gossip_system(nodes=20, seed=22)
        subscribe_everyone(push)
        for index in range(10):
            push.publish("node-0", topic="news", size=10)
        push.run(until=25.0)

        # Both deliver everything, but push forwards far more event copies.
        assert pushpull.delivery_log.total_deliveries() >= 0.9 * 200
        assert push.ledger.totals().events_forwarded > pushpull.ledger.totals().events_forwarded
