"""Experiment S3 (§4.1): where structured approaches lose fairness.

Measures the two structural effects the paper names for Scribe and DKS:

* **interior-node wasted work** — gossip/multicast messages forwarded by
  Scribe tree nodes that never subscribed to the topic they forward;
* **index hotspot load** — the skew (Gini) of per-node dispatch work in the
  DKS-style grouping, where coordinators of popular topics do the sending.

Expected shape: a non-trivial fraction of Scribe's forwarding is done by
non-subscribers, and DKS dispatch work is strongly concentrated, both far
from the fair-gossip reference run on the same workload.
"""

from __future__ import annotations

from common import BASE_CONFIG, attach_extra_info, print_results, run_compare
from repro.core import gini_coefficient


def run_structured():
    base = BASE_CONFIG.with_overrides(
        name="s3",
        nodes=96,
        topics=64,
        topic_exponent=1.0,
        interest_model="zipf",
        max_topics_per_node=4,
        duration=20.0,
        drain_time=12.0,
    )
    results = run_compare(base, ["scribe", "dks", "fair-gossip"], keep_system=True)
    extras = {}
    for result in results:
        ledger = result.system.ledger
        sends = {node: ledger.account(node).gossip_messages_sent for node in ledger.node_ids()}
        benefits = {node: ledger.account(node).events_delivered for node in ledger.node_ids()}
        wasted = sum(count for node, count in sends.items() if benefits.get(node, 0) == 0)
        total = sum(sends.values()) or 1
        extras[result.config.name] = {
            "nonbeneficiary_send_share": wasted / total,
            "send_gini": gini_coefficient(sends.values()),
        }
    return results, extras


def test_s3_structured_unfairness(benchmark):
    results, extras = benchmark.pedantic(run_structured, rounds=1, iterations=1)
    print_results(
        "S3 — structured baselines: wasted forwarding and dispatch concentration", results, extras
    )
    attach_extra_info(benchmark, results)
    benchmark.extra_info["structure"] = extras
    scribe = extras["s3/scribe"]
    dks = extras["s3/dks"]
    fair = extras["s3/fair-gossip"]
    # Scribe's dissemination work is heavily concentrated on a few tree/root
    # nodes, far more than fair gossip's.
    assert scribe["send_gini"] > fair["send_gini"] + 0.2
    # DKS coordinators create a strong dispatch hotspot.
    assert dks["send_gini"] > 0.5
