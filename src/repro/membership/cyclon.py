"""CYCLON-style partial view shuffling (reference [15] of the paper).

Each node keeps a bounded :class:`~repro.membership.views.PartialView`.
Every round the node:

1. ages all descriptors by one,
2. picks the *oldest* descriptor as the shuffle target,
3. sends the target a random subset of its view (including a fresh
   descriptor of itself),
4. the target answers with a random subset of its own view, and both sides
   merge what they received, preferring fresh entries and discarding entries
   describing themselves.

The aging rule is what flushes crashed nodes out of the overlay: their
descriptors only grow older and are eventually evicted, without any explicit
failure detector.  The shuffle messages travel over the simulated network, so
their cost shows up in the fairness accounting as infrastructure work, which
the paper explicitly includes in a process's contribution (§2: "these might
include application messages as well as infrastructure messages").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..sim.network import Message
from ..sim.node import Process
from .base import MembershipComponent
from .views import NodeDescriptor, PartialView

__all__ = ["CyclonMembership", "cyclon_provider", "ShufflePayload"]

SHUFFLE_REQUEST = MembershipComponent.MESSAGE_PREFIX + "cyclon.request"
SHUFFLE_REPLY = MembershipComponent.MESSAGE_PREFIX + "cyclon.reply"


@dataclass(frozen=True)
class ShufflePayload:
    """Descriptors exchanged during a shuffle."""

    descriptors: Tuple[NodeDescriptor, ...]


class CyclonMembership(MembershipComponent):
    """Per-node CYCLON shuffling component.

    Parameters
    ----------
    owner:
        The process this component belongs to.
    view_size:
        Capacity of the partial view (CYCLON's ``c``).
    shuffle_size:
        Number of descriptors exchanged per shuffle (CYCLON's ``l``).
    """

    def __init__(self, owner: Process, view_size: int = 20, shuffle_size: int = 5) -> None:
        super().__init__(owner)
        if shuffle_size <= 0 or view_size <= 0:
            raise ValueError("view_size and shuffle_size must be positive")
        if shuffle_size > view_size:
            raise ValueError("shuffle_size cannot exceed view_size")
        self.view = PartialView(owner.node_id, capacity=view_size)
        self.shuffle_size = shuffle_size
        self.shuffles_initiated = 0
        self.shuffles_answered = 0
        self._pending_sent: Optional[Tuple[str, Tuple[NodeDescriptor, ...]]] = None

    # ----------------------------------------------------------- bootstrap

    def bootstrap(self, seeds: Sequence[str]) -> None:
        """Fill the view with initial contacts."""
        for seed in seeds:
            self.view.add(NodeDescriptor(node_id=seed, age=0))

    # ---------------------------------------------------------------- round

    def on_round(self) -> None:
        """Perform one shuffle with the oldest known peer."""
        self.view.age_all()
        oldest = self.view.oldest()
        if oldest is None:
            return
        target = oldest.node_id
        # The target's descriptor is removed optimistically; it comes back
        # fresh if the target answers, and stays out if it is dead.
        self.view.remove(target)
        rng = self.owner.simulator.rng.stream(f"cyclon:{self.owner.node_id}")
        subset = self.view.sample_descriptors(rng, self.shuffle_size - 1)
        offered = tuple(subset) + (NodeDescriptor(node_id=self.owner.node_id, age=0),)
        self._pending_sent = (target, offered)
        self.shuffles_initiated += 1
        self.owner.send(target, SHUFFLE_REQUEST, payload=ShufflePayload(offered), size=len(offered))

    # ------------------------------------------------------------- messages

    def handle(self, message: Message) -> bool:
        if message.kind == SHUFFLE_REQUEST:
            self._handle_request(message)
            return True
        if message.kind == SHUFFLE_REPLY:
            self._handle_reply(message)
            return True
        return False

    def _handle_request(self, message: Message) -> None:
        payload: ShufflePayload = message.payload
        rng = self.owner.simulator.rng.stream(f"cyclon:{self.owner.node_id}")
        answer = tuple(self.view.sample_descriptors(rng, self.shuffle_size))
        self.shuffles_answered += 1
        self.owner.send(
            message.sender, SHUFFLE_REPLY, payload=ShufflePayload(answer), size=max(len(answer), 1)
        )
        self._merge(payload.descriptors, sent=answer)

    def _handle_reply(self, message: Message) -> None:
        payload: ShufflePayload = message.payload
        sent: Tuple[NodeDescriptor, ...] = ()
        if self._pending_sent is not None and self._pending_sent[0] == message.sender:
            sent = self._pending_sent[1]
            self._pending_sent = None
        self._merge(payload.descriptors, sent=sent)

    def _merge(
        self, received: Tuple[NodeDescriptor, ...], sent: Tuple[NodeDescriptor, ...]
    ) -> None:
        """CYCLON merge: prefer received entries, fill spare slots with sent ones."""
        for descriptor in received:
            if descriptor.node_id == self.owner.node_id:
                continue
            if descriptor.node_id in self.view:
                self.view.add(descriptor)
                continue
            if len(self.view) < self.view.capacity:
                self.view.add(descriptor)
            else:
                # Replace one of the entries we just offered away, if any
                # are still present; otherwise fall back to age-based entry.
                replaced = False
                for candidate in sent:
                    if candidate.node_id in self.view and candidate.node_id != descriptor.node_id:
                        self.view.remove(candidate.node_id)
                        self.view.add(descriptor)
                        replaced = True
                        break
                if not replaced:
                    self.view.add(descriptor)

    # -------------------------------------------------------------- queries

    def select_partners(
        self, count: int, rng: random.Random, exclude: Iterable[str] = ()
    ) -> List[str]:
        return self.view.sample(rng, count, exclude=exclude)

    def known_peers(self) -> List[str]:
        return self.view.node_ids()

    def notify_left(self, node_id: str) -> None:
        self.view.remove(node_id)


def cyclon_provider(view_size: int = 20, shuffle_size: int = 5):
    """Return a provider building :class:`CyclonMembership` components."""

    def provider(owner: Process) -> CyclonMembership:
        return CyclonMembership(owner, view_size=view_size, shuffle_size=shuffle_size)

    return provider
