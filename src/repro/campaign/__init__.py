"""Dependency-driven experiment campaigns (the "make paper" layer).

A :class:`CampaignSpec` declares the paper's artifacts (*targets*) and the
experiment batches they consume (*services*), wired together with
``ALL``/``SEQ``/``ONE`` connectors and arbitrary ``after`` edges.
:func:`compile_graph` turns the spec into a topologically ordered DAG, and
:class:`CampaignExecutor` runs it incrementally: per-point staleness comes
from the content-addressed result cache, so a warm campaign re-runs
nothing and a single edited parameter re-runs exactly its downstream
points.  Every run writes a :class:`RunManifest` with per-target
provenance.  ``python -m repro campaign`` is the CLI surface.
"""

from .executor import CampaignExecutor, expand_service
from .graph import CampaignGraph, compile_graph
from .manifest import (
    MANIFEST_SCHEMA,
    PointRecord,
    RunManifest,
    ServiceRecord,
    TargetRecord,
)
from .spec import (
    CAMPAIGN_SCHEMA,
    CampaignError,
    CampaignSpec,
    Connector,
    ServiceSpec,
    TargetSpec,
)

__all__ = [
    "CAMPAIGN_SCHEMA",
    "MANIFEST_SCHEMA",
    "CampaignError",
    "CampaignExecutor",
    "CampaignGraph",
    "CampaignSpec",
    "Connector",
    "PointRecord",
    "RunManifest",
    "ServiceRecord",
    "ServiceSpec",
    "TargetRecord",
    "TargetSpec",
    "compile_graph",
    "expand_service",
]
