"""``python -m repro`` — the experiment orchestration CLI.

The actual implementation lives in :mod:`repro.experiments.cli`; this module
only wires it to the interpreter's ``-m`` entry point.
"""

import sys

from .experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
