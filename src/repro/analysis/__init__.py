"""Post-run analysis: fairness summaries, reliability/latency, text tables."""

from .fairness_report import (
    NodeFairnessRow,
    SystemFairnessSummary,
    compare_systems,
    summarise_fairness,
)
from .reliability import EventReliability, ReliabilityReport, measure_reliability
from .tables import Table, format_mapping, format_table

__all__ = [
    "NodeFairnessRow",
    "SystemFairnessSummary",
    "summarise_fairness",
    "compare_systems",
    "EventReliability",
    "ReliabilityReport",
    "measure_reliability",
    "Table",
    "format_table",
    "format_mapping",
]
