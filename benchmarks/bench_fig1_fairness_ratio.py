"""Experiment F1 (Figure 1): is contribution/benefit equalised across peers?

Runs the same skewed-interest workload on classic push gossip, fair gossip,
Scribe, SplitStream, brokers, DKS grouping, and data-aware multicast, and
compares the dispersion of per-node contribution/benefit ratios.  Expected
shape: fair gossip and data-aware multicast have the highest ratio-Jain and
the lowest wasted-contribution share; Scribe and brokers the worst; classic
gossip sits in between (great load balance, poor fairness).
"""

from __future__ import annotations

from common import BASE_CONFIG, attach_extra_info, print_results, run_compare

SYSTEMS = ["gossip", "fair-gossip", "pushpull-gossip", "scribe", "splitstream", "dks", "brokers", "dam"]


def run_comparison():
    base = BASE_CONFIG.with_overrides(name="fig1", nodes=96, duration=20.0, drain_time=12.0)
    return run_compare(base, SYSTEMS)


def test_fig1_fairness_ratio_comparison(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_results("Figure 1 — contribution/benefit ratio equalisation across systems", results)
    attach_extra_info(benchmark, results)
    by_system = {result.config.system: result for result in results}
    # The paper's qualitative claims, asserted on the measured shape:
    assert (
        by_system["fair-gossip"].fairness.report.ratio_jain
        > by_system["gossip"].fairness.report.ratio_jain
    )
    assert (
        by_system["scribe"].fairness.report.ratio_jain
        < by_system["fair-gossip"].fairness.report.ratio_jain
    )
    assert by_system["brokers"].fairness.report.wasted_share > 0.5
    for result in results:
        assert result.reliability.delivery_ratio > 0.85
