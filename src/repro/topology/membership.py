"""Domain-scoped membership: keep peer sampling inside the local domain.

The topology layer's first invariant is that *gossip stays intra-domain* —
cross-domain traffic is the bridge router's job.  Rather than teaching every
membership service about domains, :class:`DomainScopedMembership` wraps any
:class:`~repro.membership.base.MembershipComponent` and filters its surface:

* ``select_partners`` excludes every node outside the owner's domain (the
  inner component's own selection logic and RNG usage are otherwise
  untouched);
* ``bootstrap`` drops out-of-domain seeds and deterministically adds the
  owner's ring neighbours (previous/next in the sorted domain member list),
  so small domains stay connected even when the global seed sample missed
  them entirely — without a single extra RNG draw;
* ``known_peers`` reports the intra-domain view.

Because bootstrap seeds and shuffle partners are all intra-domain, a view
protocol like CYCLON never learns a foreign descriptor in the first place;
the filters are a guarantee, not a crutch.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence

from ..membership.base import MembershipComponent, MembershipProvider
from ..sim.network import Message
from ..sim.node import Process
from .domains import DomainMap

__all__ = ["DomainScopedMembership", "domain_scoped_provider"]


class DomainScopedMembership(MembershipComponent):
    """Wrap a membership component so its peers stay intra-domain."""

    def __init__(self, owner: Process, inner: MembershipComponent, domain_map: DomainMap) -> None:
        super().__init__(owner)
        self.inner = inner
        self._domain_map = domain_map
        domain = domain_map.domain(owner.node_id)
        self.domain = domain
        if domain is None:
            self._local = frozenset()
            self._foreign = frozenset()
        else:
            local = frozenset(domain_map.members[domain])
            self._local = local
            self._foreign = frozenset(domain_map.domain_of) - local

    # ---------------------------------------------------------- delegation

    def bootstrap(self, seeds: Sequence[str]) -> None:
        filtered = [seed for seed in seeds if seed not in self._foreign]
        for neighbour in self._ring_neighbours():
            if neighbour not in filtered:
                filtered.append(neighbour)
        self.inner.bootstrap(filtered)

    def on_round(self) -> None:
        self.inner.on_round()

    def handle(self, message: Message) -> bool:
        return self.inner.handle(message)

    def select_partners(
        self, count: int, rng: random.Random, exclude: Iterable[str] = ()
    ) -> List[str]:
        excluded = set(exclude) | self._foreign
        partners = self.inner.select_partners(count, rng, exclude=excluded)
        # The exclusion list already guarantees intra-domain partners for
        # every in-tree component; the filter is a final safety net against
        # components that treat ``exclude`` as advisory.
        return [peer for peer in partners if peer not in self._foreign]

    def known_peers(self) -> List[str]:
        return [peer for peer in self.inner.known_peers() if peer not in self._foreign]

    def notify_left(self, node_id: str) -> None:
        self.inner.notify_left(node_id)

    # ------------------------------------------------------------- helpers

    def _ring_neighbours(self) -> List[str]:
        """Previous/next members on the sorted intra-domain ring (no RNG)."""
        if self.domain is None:
            return []
        members = self._domain_map.members[self.domain]
        if len(members) < 2:
            return []
        index = members.index(self.owner.node_id)
        previous = members[index - 1]
        following = members[(index + 1) % len(members)]
        neighbours = [previous]
        if following != previous:
            neighbours.append(following)
        return neighbours


def domain_scoped_provider(
    inner: MembershipProvider, domain_map: DomainMap
) -> MembershipProvider:
    """Wrap a membership provider so every built component is domain-scoped."""

    def provider(owner: Process) -> DomainScopedMembership:
        return DomainScopedMembership(owner, inner(owner), domain_map)

    return provider
