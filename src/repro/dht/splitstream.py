"""SplitStream-style striping over Scribe trees (reference [7], §3.1).

SplitStream's goal is *load balancing*: instead of one multicast tree per
topic (where interior nodes carry all the forwarding load), the content is
split into ``k`` stripes, each disseminated over its own tree rooted at a
different rendezvous, so that the forwarding load of a topic is spread over
many different interior node sets.

The paper's point (§3.1–3.2) is that this balances *load* but not
*fairness*: the interior nodes of every stripe tree still forward events for
subscribers of topics they do not care about — there are simply more such
nodes, each carrying a smaller share.  Benchmark S2 uses this system to show
a high contribution-Jain (good load balance) together with a poor
contribution/benefit fairness.

Implementation: each topic ``t`` maps to stripe routing topics ``t#0 ...
t#k-1``; a subscriber joins every stripe tree, and a publisher assigns each
event to a stripe round-robin, so over time all stripes carry an equal share
of the topic's traffic.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.accounting import WorkLedger
from ..pubsub.events import Event
from ..pubsub.filters import Filter, TopicFilter
from ..pubsub.interfaces import DeliveryCallback, DeliveryLog
from ..sim.engine import Simulator
from ..sim.network import Network
from .scribe import ScribeSystem

__all__ = ["SplitStreamSystem"]


class SplitStreamSystem(ScribeSystem):
    """Scribe with per-topic striping across multiple trees."""

    name = "splitstream"

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        node_ids: Sequence[str],
        stripes: int = 4,
        ledger: Optional[WorkLedger] = None,
        delivery_log: Optional[DeliveryLog] = None,
    ) -> None:
        if stripes <= 0:
            raise ValueError("stripes must be positive")
        super().__init__(simulator, network, node_ids, ledger=ledger, delivery_log=delivery_log)
        self.stripes = stripes
        self._stripe_counter: Dict[str, int] = {}

    # ------------------------------------------------------------ helpers

    def stripe_topics(self, topic: str) -> list:
        """Routing topics for the stripes of ``topic``."""
        return [f"{topic}#{stripe}" for stripe in range(self.stripes)]

    def _next_stripe(self, topic: str) -> str:
        index = self._stripe_counter.get(topic, 0)
        self._stripe_counter[topic] = index + 1
        return f"{topic}#{index % self.stripes}"

    # ------------------------------------------------------------- §2 API

    def subscribe(
        self,
        node_id: str,
        subscription_filter: Filter,
        callbacks: Sequence[DeliveryCallback] = (),
    ) -> None:
        topic = self._topic_of(subscription_filter)
        node = self.nodes[node_id]
        # Join every stripe tree; interest is still keyed on the real topic
        # (and the ledger counts one filter, however many stripe trees back it).
        for routing_topic in self.stripe_topics(topic):
            node.subscribe_topic(topic, routing_topic=routing_topic)
        self.subscriptions.subscribe(node_id, subscription_filter, timestamp=self.simulator.now)
        for callback in callbacks:
            node.add_delivery_callback(callback)

    def unsubscribe(self, node_id: str, subscription_filter: Filter) -> None:
        topic = self._topic_of(subscription_filter)
        node = self.nodes[node_id]
        for routing_topic in self.stripe_topics(topic):
            node.unsubscribe_topic(topic, routing_topic=routing_topic)
        self.subscriptions.unsubscribe(node_id, subscription_filter, timestamp=self.simulator.now)

    def publish(self, publisher_id: str, event: Optional[Event] = None, **attributes) -> Event:
        if event is None:
            factory = self._factories[publisher_id]
            topic = attributes.pop("topic", None)
            size = attributes.pop("size", 1)
            event = factory.create(attributes=attributes, topic=topic, size=size)
        if event.topic is None:
            raise ValueError("SplitStream is topic-based: the event needs a topic")
        event = event.with_time(self.simulator.now)
        routing_topic = self._next_stripe(event.topic)
        self.nodes[publisher_id].publish(event, routing_topic=routing_topic)
        return event
