"""System wrapper wiring gossip nodes into a selective dissemination system.

:class:`GossipSystem` owns the simulator, network, ledger, delivery log, and
subscription table, creates one gossip node per participant, and exposes the
``publish / subscribe / unsubscribe`` API of Section 2.  It is the object the
examples, tests, and benchmarks interact with; the node class is pluggable so
the same wrapper serves the classic protocol (:class:`PushGossipNode`), the
push-pull variant, and the fair protocol of :mod:`repro.core.fair_gossip`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Type

from ..core.accounting import WorkLedger
from ..membership.base import MembershipProvider
from ..membership.cyclon import cyclon_provider
from ..pubsub.events import Event, EventFactory
from ..pubsub.filters import Filter
from ..pubsub.interfaces import DeliveryCallback, DeliveryLog, DisseminationSystem
from ..pubsub.subscriptions import SubscriptionTable
from ..sim.engine import Simulator
from ..sim.network import Network
from ..sim.node import ProcessRegistry
from .push import PushGossipNode

__all__ = ["GossipSystem"]


class GossipSystem(DisseminationSystem):
    """A complete gossip-based selective event dissemination system.

    Parameters
    ----------
    simulator / network:
        Pre-built simulation substrate (so experiments can install custom
        latency, loss, and failure models before creating the system).
    node_ids:
        Identifiers of the participants.
    membership_provider:
        Factory for per-node membership components; defaults to CYCLON views.
    node_class / node_kwargs:
        The gossip node implementation and its protocol parameters
        (``fanout``, ``gossip_size``, ``round_period`` ...).
    bootstrap_degree:
        Number of random seed contacts given to each node at start.
    """

    name = "push-gossip"

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        node_ids: Sequence[str],
        membership_provider: Optional[MembershipProvider] = None,
        node_class: Type[PushGossipNode] = PushGossipNode,
        node_kwargs: Optional[Dict] = None,
        bootstrap_degree: int = 10,
        ledger: Optional[WorkLedger] = None,
        delivery_log: Optional[DeliveryLog] = None,
    ) -> None:
        if not node_ids:
            raise ValueError("a gossip system needs at least one node")
        self.simulator = simulator
        self.network = network
        self.ledger = ledger if ledger is not None else WorkLedger()
        self._delivery_log = delivery_log if delivery_log is not None else DeliveryLog()
        self.subscriptions = SubscriptionTable()
        self.registry = ProcessRegistry()
        self.nodes: Dict[str, PushGossipNode] = {}
        self._factories: Dict[str, EventFactory] = {}
        provider = membership_provider if membership_provider is not None else cyclon_provider()
        kwargs = dict(node_kwargs or {})

        for node_id in node_ids:
            node = node_class(
                node_id,
                simulator,
                network,
                membership_provider=provider,
                ledger=self.ledger,
                delivery_log=self._delivery_log,
                **kwargs,
            )
            self.nodes[node_id] = node
            self.registry.add(node)
            self._factories[node_id] = EventFactory(node_id)

        self._bootstrap(bootstrap_degree)

    # -------------------------------------------------------------- wiring

    def _bootstrap(self, degree: int) -> None:
        """Give every node a random set of initial contacts and start it."""
        ids = list(self.nodes)
        rng = self.simulator.rng.stream("bootstrap")
        for node_id, node in self.nodes.items():
            others = [candidate for candidate in ids if candidate != node_id]
            seeds = others if degree >= len(others) else rng.sample(others, degree)
            node.bootstrap(seeds)
            node.start()

    @property
    def delivery_log(self) -> DeliveryLog:
        return self._delivery_log

    def node_ids(self) -> List[str]:
        return sorted(self.nodes)

    def node(self, node_id: str) -> PushGossipNode:
        """Return the node object for ``node_id``."""
        return self.nodes[node_id]

    # ----------------------------------------------------------- operations

    def publish(self, publisher_id: str, event: Optional[Event] = None, **attributes) -> Event:
        """Publish an event from ``publisher_id``.

        Either pass a pre-built :class:`Event` or keyword attributes (with an
        optional ``topic=...``) and the system builds one.
        """
        if event is None:
            factory = self._factories[publisher_id]
            topic = attributes.pop("topic", None)
            size = attributes.pop("size", 1)
            event = factory.create(attributes=attributes, topic=topic, size=size)
        event = event.with_time(self.simulator.now)
        self.nodes[publisher_id].publish(event)
        return event

    def subscribe(
        self,
        node_id: str,
        subscription_filter: Filter,
        callbacks: Sequence[DeliveryCallback] = (),
    ) -> None:
        node = self.nodes[node_id]
        if node.subscribe(subscription_filter):
            self.subscriptions.subscribe(node_id, subscription_filter, timestamp=self.simulator.now)
        for callback in callbacks:
            node.add_delivery_callback(callback)

    def unsubscribe(self, node_id: str, subscription_filter: Filter) -> None:
        node = self.nodes[node_id]
        if node.unsubscribe(subscription_filter):
            self.subscriptions.unsubscribe(node_id, subscription_filter, timestamp=self.simulator.now)

    # -------------------------------------------------------------- running

    def run(self, until: float) -> None:
        """Advance the simulation to time ``until``."""
        self.simulator.run(until=until)

    def run_rounds(self, rounds: int, round_period: Optional[float] = None) -> None:
        """Advance the simulation by ``rounds`` gossip rounds."""
        if round_period is None:
            any_node = next(iter(self.nodes.values()))
            round_period = any_node.round_period
        self.simulator.run(until=self.simulator.now + rounds * round_period)

    # -------------------------------------------------------------- queries

    def interested_nodes(self, event: Event) -> List[str]:
        """Oracle: which nodes should deliver this event (from the table)."""
        return self.subscriptions.interested_nodes(event)

    def topics_of(self, node_id: str) -> List[str]:
        """Topics a node is subscribed to (per the subscription table)."""
        return self.subscriptions.topics_of_node(node_id)
