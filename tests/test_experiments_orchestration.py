"""Tests for the experiment orchestration layer.

Covers the tentpole guarantees of the parallel executor and result cache:

* parallel execution is bit-identical to serial execution on the same grid;
* result artifacts round-trip losslessly through JSON;
* the content-addressed cache misses, then hits, and survives corruption;
* the ``python -m repro`` CLI subcommands work end to end;
* the :class:`VirtualClock` start validation behaves the same from
  ``__init__`` and ``reset``.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.tables import Table
from repro.experiments import (
    ExperimentConfig,
    ExperimentResult,
    ParallelSweepExecutor,
    ResultCache,
    compare_configs,
    config_hash,
    get_scenario,
    grid_configs,
    run_experiment,
    scenario_names,
    sweep,
    sweep_configs,
)
from repro.experiments.cli import main as cli_main
from repro.sim.clock import VirtualClock
from repro.sim.rng import derive_seed

SMALL = ExperimentConfig(
    name="orchestration",
    nodes=16,
    topics=4,
    duration=5.0,
    drain_time=4.0,
    publication_rate=2.0,
    fanout=3,
    seed=101,
)


def result_fingerprints(results):
    """Full serialized form: equality means bit-identical artifacts."""
    return [json.dumps(result.to_dict(), sort_keys=True) for result in results]


class TestGridExpansion:
    def test_sweep_configs_names_and_values(self):
        configs = sweep_configs(SMALL, "fanout", [2, 4])
        assert [config.fanout for config in configs] == [2, 4]
        assert [config.name for config in configs] == [
            "orchestration/fanout=2",
            "orchestration/fanout=4",
        ]
        # Without reseed every point shares the base seed.
        assert {config.seed for config in configs} == {SMALL.seed}

    def test_sweep_configs_reseed_derives_per_point_seeds(self):
        configs = sweep_configs(SMALL, "fanout", [2, 4], reseed=True)
        assert configs[0].seed == derive_seed(SMALL.seed, "orchestration/fanout=2")
        assert configs[1].seed == derive_seed(SMALL.seed, "orchestration/fanout=4")
        assert configs[0].seed != configs[1].seed

    def test_reseed_does_not_clobber_a_seed_sweep(self):
        configs = sweep_configs(SMALL, "seed", [1, 2, 3], reseed=True)
        assert [config.seed for config in configs] == [1, 2, 3]
        grid = grid_configs(SMALL, {"seed": [5, 6]}, reseed=True)
        assert [config.seed for config in grid] == [5, 6]

    def test_compare_configs(self):
        configs = compare_configs(SMALL, ["gossip", "scribe"])
        assert [config.system for config in configs] == ["gossip", "scribe"]
        assert configs[0].name == "orchestration/gossip"

    def test_grid_configs_cartesian_product(self):
        configs = grid_configs(SMALL, {"fanout": [2, 3], "loss_rate": [0.0, 0.1]})
        assert len(configs) == 4
        assert [(config.fanout, config.loss_rate) for config in configs] == [
            (2, 0.0),
            (2, 0.1),
            (3, 0.0),
            (3, 0.1),
        ]
        assert configs[1].name == "orchestration/fanout=2,loss_rate=0.1"


class TestParallelEqualsSerial:
    def test_parallel_sweep_is_bit_identical_to_serial(self):
        serial = sweep(SMALL, "fanout", [2, 4])
        executor = ParallelSweepExecutor(workers=2)
        parallel = executor.sweep(SMALL, "fanout", [2, 4])
        assert result_fingerprints(parallel) == result_fingerprints(serial)
        assert executor.last_report.total == 2
        assert executor.last_report.computed == 2
        assert executor.last_report.cache_hits == 0

    def test_parallel_compare_is_bit_identical_to_serial(self):
        systems = ["gossip", "fair-gossip"]
        serial = ParallelSweepExecutor(workers=1).compare(SMALL, systems)
        parallel = ParallelSweepExecutor(workers=2).compare(SMALL, systems)
        assert result_fingerprints(parallel) == result_fingerprints(serial)

    def test_keep_system_runs_serially_with_live_system(self):
        executor = ParallelSweepExecutor(workers=2)
        results = executor.run_many([SMALL], keep_system=True)
        assert results[0].system is not None

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelSweepExecutor(workers=0)


class TestResultArtifacts:
    def test_result_roundtrips_through_json(self):
        result = run_experiment(SMALL)
        payload = json.loads(json.dumps(result.to_dict()))
        restored = ExperimentResult.from_dict(payload)
        assert restored.to_dict() == result.to_dict()
        assert restored.summary_row() == result.summary_row()
        assert restored.system is None
        assert [event.event_id for event in restored.published_events] == [
            event.event_id for event in result.published_events
        ]
        assert restored.interest.topics_of("node-000") == result.interest.topics_of("node-000")

    def test_config_from_dict_rejects_unknown_fields(self):
        payload = SMALL.to_dict()
        payload["not_a_field"] = 1
        with pytest.raises(ValueError):
            ExperimentConfig.from_dict(payload)

    def test_config_hash_covers_every_field(self):
        assert config_hash(SMALL) == config_hash(SMALL.with_overrides())
        assert config_hash(SMALL) != config_hash(SMALL.with_overrides(seed=SMALL.seed + 1))
        assert config_hash(SMALL) != config_hash(SMALL.with_overrides(name="other"))

    def test_table_roundtrips_through_json(self):
        table = Table(["name", "value"], title="t")
        table.add_row(name="a", value=1.5)
        table.add_row(name="b")
        restored = Table.from_dict(json.loads(json.dumps(table.to_dict())))
        assert restored.render() == table.render()


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        executor = ParallelSweepExecutor(workers=1, cache=cache)
        first = executor.sweep(SMALL, "fanout", [2, 4])
        assert executor.last_report.cache_hits == 0
        assert executor.last_report.computed == 2
        assert cache.entry_count() == 2
        second = executor.sweep(SMALL, "fanout", [2, 4])
        assert executor.last_report.cache_hits == 2
        assert executor.last_report.computed == 0
        assert result_fingerprints(second) == result_fingerprints(first)

    def test_config_change_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        executor = ParallelSweepExecutor(workers=1, cache=cache)
        executor.run(SMALL)
        executor.run(SMALL.with_overrides(seed=SMALL.seed + 1))
        assert executor.last_report.cache_hits == 0
        assert cache.entry_count() == 2

    def test_corrupt_artifact_reads_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        result = run_experiment(SMALL)
        path = cache.store(result)
        path.write_text("{ not json", encoding="utf-8")
        assert cache.load(SMALL) is None

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.store(run_experiment(SMALL))
        assert cache.clear() == 1
        assert cache.entry_count() == 0
        assert cache.load(SMALL) is None

    def test_keep_system_bypasses_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        executor = ParallelSweepExecutor(workers=1, cache=cache)
        executor.run(SMALL, keep_system=True)
        assert cache.entry_count() == 0


class TestScenarioRegistry:
    def test_known_scenarios_registered(self):
        names = scenario_names()
        for expected in ("base", "smoke", "fig1", "fig4-push"):
            assert expected in names

    def test_get_scenario_unknown_name_is_helpful(self):
        with pytest.raises(KeyError, match="known scenarios"):
            get_scenario("no-such-scenario")

    def test_smoke_scenario_is_small(self):
        assert get_scenario("smoke").config.nodes <= 32


class TestCli:
    def test_list_scenarios(self, capsys):
        assert cli_main(["list-scenarios"]) == 0
        output = capsys.readouterr().out
        assert "smoke" in output
        assert "base" in output

    def test_run_smoke(self, capsys, tmp_path):
        code = cli_main(
            ["run", "smoke", "--nodes", "12", "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "delivery_ratio" in output
        assert "computed: 1" in output

    def test_sweep_parallel_then_cached(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = [
            "sweep",
            "smoke",
            "--nodes",
            "12",
            "--param",
            "fanout",
            "--values",
            "2,3",
            "--workers",
            "2",
            "--cache-dir",
            cache_dir,
            "--json",
            str(tmp_path / "first.json"),
        ]
        assert cli_main(argv) == 0
        first_output = capsys.readouterr().out
        assert "cache hits: 0 | computed: 2" in first_output

        serial_argv = list(argv)
        serial_argv[serial_argv.index("--workers") + 1] = "1"
        serial_argv[serial_argv.index(str(tmp_path / "first.json"))] = str(tmp_path / "second.json")
        serial_argv[serial_argv.index("--cache-dir") + 1] = str(tmp_path / "cache2")
        assert cli_main(serial_argv) == 0
        capsys.readouterr()
        first = (tmp_path / "first.json").read_text(encoding="utf-8")
        second = (tmp_path / "second.json").read_text(encoding="utf-8")
        assert first == second  # workers=2 and workers=1 artifacts are bit-identical

        assert cli_main(argv) == 0  # repeat: every point served from cache
        repeat_output = capsys.readouterr().out
        assert "cache hits: 2 | computed: 0" in repeat_output

    def test_compare_subcommand(self, capsys, tmp_path):
        code = cli_main(
            [
                "compare",
                "smoke",
                "--nodes",
                "12",
                "--systems",
                "gossip,fair-gossip",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "fair-gossip" in output

    def test_set_override_and_unknown_field(self, capsys, tmp_path):
        code = cli_main(
            [
                "run",
                "smoke",
                "--set",
                "fanout=5",
                "--no-cache",
                "--nodes",
                "12",
            ]
        )
        assert code == 0
        with pytest.raises(SystemExit):
            cli_main(["run", "smoke", "--set", "bogus=1"])

    def test_unknown_scenario_exits(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "no-such-scenario"])


class TestClockValidation:
    def test_init_and_reset_raise_the_same_error(self):
        with pytest.raises(ValueError, match="start time must be non-negative") as init_error:
            VirtualClock(start=-1.0)
        clock = VirtualClock()
        with pytest.raises(ValueError, match="start time must be non-negative") as reset_error:
            clock.reset(start=-1.0)
        assert str(init_error.value) == str(reset_error.value)

    def test_reset_still_resets(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        clock.reset(2.0)
        assert clock.now == 2.0
