"""Campaign layer: cold vs warm wall time and replanning overhead.

The campaign executor's value proposition is incrementality: a warm cache
turns a full artifact regeneration into pure cache reads plus rendering.
This benchmark quantifies that on two campaigns:

* **mini** — the two-target smoke campaign CI runs (compare + sweep over
  the 24-node smoke scenario): cold wall time, warm wall time, and the
  cold/warm speedup (the headline: warm must compute nothing);
* **chain** — a deliberately deep ``after`` chain (8 single-point services
  in sequence).  Because the planner executes ready services in topological
  order *within* a wave, the chain still completes in one pass — what the
  warm run measures is pure scheduling overhead per link: demand
  propagation, dependency closure, staleness probes, and cache loads with
  zero simulation.

Writes ``BENCH_campaign.json`` (override with ``REPRO_BENCH_CAMPAIGN_JSON``).

Environment knobs:

* ``REPRO_BENCH_CAMPAIGN_DEPTH`` — chain length (default 8).
* ``REPRO_BENCH_CAMPAIGN_JSON``  — artifact path.
"""

from __future__ import annotations

import json
import os
import tempfile

from common import ExperimentConfig  # noqa: F401  (sys.path side effect)

from repro.campaign import CampaignExecutor, CampaignSpec
from repro.experiments.cache import ResultCache
from repro.experiments.executor import ParallelSweepExecutor

ARTIFACT = os.environ.get("REPRO_BENCH_CAMPAIGN_JSON", "BENCH_campaign.json")
DEPTH = int(os.environ.get("REPRO_BENCH_CAMPAIGN_DEPTH", "8"))

MINI_SPEC = {
    "schema": "campaign/v1",
    "name": "bench-mini",
    "services": {
        "mini-compare": {"scenario": "smoke", "compare": ["gossip", "fair-gossip"]},
        "mini-fanout": {"scenario": "smoke", "sweep": {"system.fanout": [2, 3]}},
    },
    "targets": {
        "compare-table": {"inputs": ["mini-compare"]},
        "fanout-table": {"inputs": ["mini-fanout"]},
    },
}


def _chain_spec(depth: int) -> CampaignSpec:
    """``depth`` single-point services, each ``after`` the previous one."""
    services = {}
    previous = None
    for index in range(depth):
        name = f"link-{index}"
        entry = {"scenario": "smoke", "set": {"seed": 1000 + index}}
        if previous is not None:
            entry["after"] = [previous]
        services[name] = entry
        previous = name
    payload = {
        "schema": "campaign/v1",
        "name": "bench-chain",
        "services": services,
        "targets": {"chain-table": {"inputs": list(services)}},
    }
    return CampaignSpec.from_dict(payload).validate()


def _execute(spec: CampaignSpec, cache_dir: str, out_dir: str):
    executor = CampaignExecutor(
        spec,
        executor=ParallelSweepExecutor(cache=ResultCache(cache_dir)),
        out_dir=out_dir,
    )
    return executor.run()


def _campaign_row(name: str, spec: CampaignSpec, root: str) -> dict:
    cache_dir = os.path.join(root, name, "cache")
    out_dir = os.path.join(root, name, "out")
    cold = _execute(spec, cache_dir, out_dir)
    warm = _execute(spec, cache_dir, out_dir)
    assert warm.totals()["computed"] == 0, warm.totals()
    assert cold.canonical_json() != "" and warm.waves == cold.waves
    return {
        "campaign": name,
        "points": cold.totals()["points"],
        "waves": cold.waves,
        "cold_seconds": cold.wall_seconds,
        "warm_seconds": warm.wall_seconds,
        "speedup": cold.wall_seconds / warm.wall_seconds if warm.wall_seconds else 0.0,
        "warm_seconds_per_point": (
            warm.wall_seconds / warm.totals()["points"] if warm.totals()["points"] else 0.0
        ),
    }


def measure() -> dict:
    mini = CampaignSpec.from_dict(MINI_SPEC).validate()
    chain = _chain_spec(DEPTH)
    with tempfile.TemporaryDirectory() as root:
        rows = [
            _campaign_row("mini", mini, root),
            _campaign_row("chain", chain, root),
        ]
    return {
        "schema": "bench-campaign/v1",
        "chain_depth": DEPTH,
        "rows": rows,
        "summary": {
            row["campaign"]: {
                "cold_seconds": row["cold_seconds"],
                "warm_seconds": row["warm_seconds"],
                "speedup": row["speedup"],
                "replanning_seconds_per_point": row["warm_seconds_per_point"],
            }
            for row in rows
        },
    }


def test_campaign_cold_vs_warm(benchmark):
    artifact = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = artifact["rows"]
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, sort_keys=True, indent=2)
        handle.write("\n")
    print()
    for row in artifact["rows"]:
        print(
            f"{row['campaign']}: cold {row['cold_seconds']:.2f}s, "
            f"warm {row['warm_seconds']:.3f}s ({row['speedup']:.0f}x), "
            f"{row['waves']} wave(s), "
            f"{row['warm_seconds_per_point'] * 1000:.1f} ms/point warm overhead"
        )
    for row in artifact["rows"]:
        # Warm must be a pure replan+render pass: strictly faster than cold.
        assert row["warm_seconds"] < row["cold_seconds"]
        # Scheduling a fully warm point is bookkeeping, not simulation: keep
        # it under an (extremely generous) 1 s even on slow CI boxes.
        assert row["warm_seconds_per_point"] < 1.0
