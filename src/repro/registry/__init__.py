"""Component registry + declarative StackSpec: the construction API.

One vocabulary builds every stack in the repository, for both the
discrete-event simulator and the live asyncio runtime:

* :mod:`repro.registry.base` — typed registries with per-component
  parameter schemas and did-you-mean errors;
* :mod:`repro.registry.specs` — :class:`StackSpec` and its nested component
  specs, with nested/legacy-flat dict round-trips and dotted-path access;
* :mod:`repro.registry.builtins` — registrations for every built-in system,
  membership view, interest model, workload, and fairness policy, plus
  :func:`build_stack`.
"""

from .base import ComponentEntry, Param, Registry, RegistryError
from .builtins import (
    INTEREST,
    MEMBERSHIP,
    POLICIES,
    SYSTEMS,
    WORKLOADS,
    BuildContext,
    all_registries,
    build_interest_model,
    build_popularity,
    build_stack,
    build_workload,
    resolve_policy_kind,
    workload_kind,
)
from .specs import (
    FLAT_TO_PATH,
    PATH_TO_FLAT,
    FaultChurnSpec,
    FaultPartitionSpec,
    FaultPerturbSpec,
    FaultsSpec,
    InterestSpec,
    MembershipSpec,
    PolicySpec,
    StackSpec,
    SystemSpec,
    TelemetrySpec,
    TopologySpec,
    WorkloadSpec,
    parse_scalar,
    parse_spec_overrides,
    resolve_config_key,
    resolve_spec_path,
    spec_paths,
)

__all__ = [
    "Registry",
    "RegistryError",
    "ComponentEntry",
    "Param",
    "SYSTEMS",
    "MEMBERSHIP",
    "INTEREST",
    "WORKLOADS",
    "POLICIES",
    "BuildContext",
    "build_stack",
    "build_popularity",
    "build_interest_model",
    "build_workload",
    "workload_kind",
    "resolve_policy_kind",
    "all_registries",
    "StackSpec",
    "SystemSpec",
    "MembershipSpec",
    "InterestSpec",
    "WorkloadSpec",
    "PolicySpec",
    "FaultChurnSpec",
    "FaultPartitionSpec",
    "FaultPerturbSpec",
    "FaultsSpec",
    "TelemetrySpec",
    "TopologySpec",
    "FLAT_TO_PATH",
    "PATH_TO_FLAT",
    "spec_paths",
    "resolve_config_key",
    "resolve_spec_path",
    "parse_scalar",
    "parse_spec_overrides",
]
