"""Declarative topology specification.

:class:`TopologySpec` is the spec-side face of the topology layer, modeled
on :class:`~repro.registry.specs.FaultsSpec`: a frozen dataclass whose every
field maps onto a flat ``topology_*``
:class:`~repro.experiments.config.ExperimentConfig` field (topology is
*physics* and therefore feeds the result-cache identity), with a JSON codec
for ``--topology topo.json`` files.  A spec at its default (``domains=0``)
means "flat population" and is omitted from every serialised form, so
topology-free configs hash byte-identically to their pre-topology selves.

This module is dependency-light on purpose (stdlib only): the registry's
spec layer imports it, and nothing here may pull protocol code into that
import graph.
"""

from __future__ import annotations

import difflib
import json
from dataclasses import dataclass, fields
from typing import Dict, Mapping, Tuple

__all__ = ["TOPOLOGY_SCHEMA", "TopologyError", "TopologySpec", "BRIDGE_POLICIES"]

#: Schema tag carried by standalone ``--topology`` files.
TOPOLOGY_SCHEMA = "topology/v1"

#: Known bridge selection policies: ``sha256`` ranks each domain's members
#: by ``sha256(domain + "/" + node)`` (stable, seed-independent, and
#: uncorrelated with node naming); ``lexical`` takes the first members in
#: sorted-id order (predictable, handy in tests and docs).
BRIDGE_POLICIES: Tuple[str, ...] = ("sha256", "lexical")


class TopologyError(ValueError):
    """Invalid topology specification or compilation input."""


def _suggest(name: str, candidates) -> str:
    matches = difflib.get_close_matches(str(name), [str(c) for c in candidates], n=3, cutoff=0.5)
    if not matches:
        return ""
    return f" — did you mean {', '.join(repr(match) for match in matches)}?"


@dataclass(frozen=True)
class TopologySpec:
    """How a population is sharded into domains and federated by bridges.

    Attributes
    ----------
    domains:
        Number of domains; 0 (the default) disables the topology layer
        entirely.  Auto-generated domains are named ``d0`` ... ``dN-1`` and
        filled with contiguous blocks of the sorted node ids.
    bridges_per_domain:
        How many designated bridge (relay) nodes each domain runs.
    bridge_policy:
        Bridge selection policy (see :data:`BRIDGE_POLICIES`).
    cross_latency / cross_loss:
        Default extra latency / Bernoulli loss applied to every
        cross-domain link not covered by an explicit ``geo`` entry.
        Intra-domain links default to no extra effects.
    assignment:
        Optional explicit ``(node, domain)`` pairs; when present it defines
        the domain layout (and every node must appear exactly once).
        Structured — set via ``--topology topo.json``, not ``--set``.
    geo:
        Per-pair matrix entries ``(domain_a, domain_b, latency, loss)``
        overriding the defaults for that unordered pair (``a == b`` entries
        degrade intra-domain links).  Structured, like ``assignment``.
    """

    domains: int = 0
    bridges_per_domain: int = 1
    bridge_policy: str = "sha256"
    cross_latency: float = 0.0
    cross_loss: float = 0.0
    assignment: Tuple[Tuple[str, str], ...] = ()
    geo: Tuple[Tuple[str, str, float, float], ...] = ()

    @property
    def enabled(self) -> bool:
        """Whether this spec describes a non-flat (multi-domain) layout."""
        return self.domains > 0 or bool(self.assignment)

    # ------------------------------------------------------------- validation

    def validate(self) -> None:
        """Check field ranges and shapes; raise :class:`TopologyError`."""
        if self.domains < 0:
            raise TopologyError(f"topology.domains must be non-negative, got {self.domains}")
        if self.bridges_per_domain < 1:
            raise TopologyError(
                f"topology.bridges_per_domain must be at least 1, got {self.bridges_per_domain}"
            )
        if self.bridge_policy not in BRIDGE_POLICIES:
            raise TopologyError(
                f"unknown topology.bridge_policy {self.bridge_policy!r}"
                f"{_suggest(self.bridge_policy, BRIDGE_POLICIES)}; "
                f"known policies: {', '.join(BRIDGE_POLICIES)}"
            )
        if self.cross_latency < 0:
            raise TopologyError(
                f"topology.cross_latency must be non-negative, got {self.cross_latency}"
            )
        if not 0.0 <= self.cross_loss <= 1.0:
            raise TopologyError(
                f"topology.cross_loss must be within [0, 1], got {self.cross_loss}"
            )
        seen_nodes = set()
        for pair in self.assignment:
            if len(pair) != 2 or not all(isinstance(part, str) for part in pair):
                raise TopologyError(
                    f"topology.assignment entries must be (node, domain) string pairs, got {pair!r}"
                )
            node = pair[0]
            if node in seen_nodes:
                raise TopologyError(f"node {node!r} assigned to more than one domain")
            seen_nodes.add(node)
        for entry in self.geo:
            if len(entry) != 4:
                raise TopologyError(
                    "topology.geo entries must be (domain_a, domain_b, latency, loss) "
                    f"tuples, got {entry!r}"
                )
            domain_a, domain_b, latency, loss = entry
            if not isinstance(domain_a, str) or not isinstance(domain_b, str):
                raise TopologyError(f"topology.geo domains must be strings, got {entry!r}")
            if not isinstance(latency, (int, float)) or isinstance(latency, bool) or latency < 0:
                raise TopologyError(
                    f"topology.geo latency must be a non-negative number, got {latency!r}"
                )
            if (
                not isinstance(loss, (int, float))
                or isinstance(loss, bool)
                or not 0.0 <= float(loss) <= 1.0
            ):
                raise TopologyError(f"topology.geo loss must be within [0, 1], got {loss!r}")

    # ------------------------------------------------------------ dict codecs

    def to_dict(self) -> Dict[str, object]:
        """Nested JSON form; fields at their defaults are omitted."""
        payload: Dict[str, object] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if value == spec_field.default:
                continue
            if spec_field.name in ("assignment", "geo"):
                payload[spec_field.name] = [list(entry) for entry in value]
            else:
                payload[spec_field.name] = value
        return payload

    @staticmethod
    def from_dict(payload: Mapping[str, object]) -> "TopologySpec":
        """Rebuild a spec; unknown fields raise with a did-you-mean hint."""
        if not isinstance(payload, Mapping):
            raise TopologyError(
                f"topology spec must be a mapping, got {type(payload).__name__}"
            )
        known = [spec_field.name for spec_field in fields(TopologySpec)]
        payload = {key: value for key, value in payload.items() if key != "schema"}
        unknown = [key for key in payload if key not in known]
        if unknown:
            raise TopologyError(
                f"unknown topology spec fields {sorted(unknown)}"
                f"{_suggest(unknown[0], known)}; known fields: {', '.join(sorted(known))}"
            )
        values: Dict[str, object] = {}
        for key in ("domains", "bridges_per_domain"):
            if key in payload:
                value = payload[key]
                if isinstance(value, bool) or not isinstance(value, int):
                    raise TopologyError(
                        f"topology spec field {key!r} must be an integer, got {value!r}"
                    )
                values[key] = value
        if "bridge_policy" in payload:
            value = payload["bridge_policy"]
            if not isinstance(value, str):
                raise TopologyError(
                    f"topology spec field 'bridge_policy' must be a string, got {value!r}"
                )
            values["bridge_policy"] = value
        for key in ("cross_latency", "cross_loss"):
            if key in payload:
                value = payload[key]
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise TopologyError(
                        f"topology spec field {key!r} must be a number, got {value!r}"
                    )
                values[key] = float(value)
        if "assignment" in payload:
            entries = payload["assignment"]
            if isinstance(entries, str) or not isinstance(entries, (list, tuple)):
                raise TopologyError(
                    f"topology spec field 'assignment' must be a list of [node, domain] "
                    f"pairs, got {entries!r}"
                )
            assignment = []
            for entry in entries:
                if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                    raise TopologyError(
                        f"topology.assignment entries must be [node, domain] pairs, got {entry!r}"
                    )
                assignment.append((str(entry[0]), str(entry[1])))
            values["assignment"] = tuple(assignment)
        if "geo" in payload:
            entries = payload["geo"]
            if isinstance(entries, str) or not isinstance(entries, (list, tuple)):
                raise TopologyError(
                    "topology spec field 'geo' must be a list of "
                    f"[domain_a, domain_b, latency, loss] entries, got {entries!r}"
                )
            geo = []
            for entry in entries:
                if not isinstance(entry, (list, tuple)) or len(entry) != 4:
                    raise TopologyError(
                        "topology.geo entries must be [domain_a, domain_b, latency, loss], "
                        f"got {entry!r}"
                    )
                domain_a, domain_b, latency, loss = entry
                for number in (latency, loss):
                    if isinstance(number, bool) or not isinstance(number, (int, float)):
                        raise TopologyError(
                            f"topology.geo latency/loss must be numbers, got {entry!r}"
                        )
                geo.append((str(domain_a), str(domain_b), float(latency), float(loss)))
            values["geo"] = tuple(geo)
        spec = TopologySpec(**values)
        spec.validate()
        return spec

    @staticmethod
    def from_file(path: str) -> "TopologySpec":
        """Load a spec from a ``--topology`` JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as error:
                raise TopologyError(f"malformed topology file {path!r}: {error}") from None
        if not isinstance(payload, Mapping):
            raise TopologyError(f"topology file {path!r} must hold a JSON object")
        schema = payload.get("schema")
        if schema is not None and schema != TOPOLOGY_SCHEMA:
            raise TopologyError(
                f"topology file {path!r} has schema {schema!r} (expected {TOPOLOGY_SCHEMA!r})"
            )
        return TopologySpec.from_dict(payload)

    def to_file_dict(self) -> Dict[str, object]:
        """Standalone-file form: :meth:`to_dict` plus the schema tag."""
        payload: Dict[str, object] = {"schema": TOPOLOGY_SCHEMA}
        payload.update(self.to_dict())
        return payload

    # ------------------------------------------------------------ flat fields

    def to_flat(self) -> Dict[str, object]:
        """The spec as flat ``topology_*`` config overrides (all fields)."""
        return {
            f"topology_{spec_field.name}": getattr(self, spec_field.name)
            for spec_field in fields(self)
        }
