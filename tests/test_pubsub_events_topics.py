"""Tests for events, event factories, topics, and topic hierarchies."""

from __future__ import annotations

import pytest

from repro.pubsub import Event, EventFactory, Topic, TopicHierarchy, TOPIC_ATTRIBUTE, topic_path


class TestEvent:
    def test_topic_property_reads_attribute(self):
        event = Event(event_id="e1", publisher="p", attributes={"topic": "news"})
        assert event.topic == "news"

    def test_topic_is_none_without_attribute(self):
        event = Event(event_id="e1", publisher="p", attributes={"price": 3})
        assert event.topic is None

    def test_attribute_accessor_with_default(self):
        event = Event(event_id="e1", publisher="p", attributes={"price": 3})
        assert event.attribute("price") == 3
        assert event.attribute("missing", default="x") == "x"

    def test_equality_and_hash_by_event_id(self):
        first = Event(event_id="e1", publisher="p", attributes={"a": 1})
        second = Event(event_id="e1", publisher="q", attributes={"b": 2})
        third = Event(event_id="e2", publisher="p")
        assert first == second
        assert hash(first) == hash(second)
        assert first != third
        assert first != "e1"

    def test_with_time_preserves_identity(self):
        event = Event(event_id="e1", publisher="p", attributes={"topic": "t"}, size=4)
        stamped = event.with_time(7.5)
        assert stamped.published_at == 7.5
        assert stamped.event_id == event.event_id
        assert stamped.size == 4
        assert stamped.topic == "t"


class TestEventFactory:
    def test_ids_are_unique_and_prefixed_by_publisher(self):
        factory = EventFactory("node-1")
        ids = {factory.create(topic="t").event_id for _ in range(100)}
        assert len(ids) == 100
        assert all(event_id.startswith("node-1#") for event_id in ids)

    def test_two_publishers_never_collide(self):
        a = EventFactory("a")
        b = EventFactory("b")
        assert a.create().event_id != b.create().event_id

    def test_topic_merged_into_attributes(self):
        factory = EventFactory("p")
        event = factory.create(attributes={"level": 2}, topic="alerts")
        assert event.attributes[TOPIC_ATTRIBUTE] == "alerts"
        assert event.attributes["level"] == 2

    def test_created_count(self):
        factory = EventFactory("p")
        for _ in range(3):
            factory.create()
        assert factory.created_count == 3


class TestTopicPath:
    def test_path_lists_all_prefixes(self):
        assert topic_path("a/b/c") == ["a", "a/b", "a/b/c"]

    def test_single_component(self):
        assert topic_path("sports") == ["sports"]

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            topic_path("")
        with pytest.raises(ValueError):
            topic_path("///")


class TestTopic:
    def test_parent_and_depth(self):
        assert Topic("a/b").parent_name == "a"
        assert Topic("a").parent_name is None
        assert Topic("a/b/c").depth == 3

    def test_ancestor_relation(self):
        assert Topic("a").is_ancestor_of(Topic("a/b"))
        assert not Topic("a/b").is_ancestor_of(Topic("a"))
        assert not Topic("a").is_ancestor_of(Topic("ab"))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Topic("")


class TestTopicHierarchy:
    def test_adding_leaf_adds_ancestors(self):
        hierarchy = TopicHierarchy()
        hierarchy.add("sports/football/uefa")
        assert "sports" in hierarchy
        assert "sports/football" in hierarchy
        assert len(hierarchy) == 3

    def test_roots_and_leaves(self):
        hierarchy = TopicHierarchy(["a/x", "a/y", "b"])
        assert [topic.name for topic in hierarchy.roots()] == ["a", "b"]
        assert [topic.name for topic in hierarchy.leaves()] == ["a/x", "a/y", "b"]

    def test_children_and_descendants(self):
        hierarchy = TopicHierarchy(["a/x/1", "a/x/2", "a/y"])
        assert [topic.name for topic in hierarchy.children("a")] == ["a/x", "a/y"]
        assert [topic.name for topic in hierarchy.descendants("a")] == [
            "a/x",
            "a/x/1",
            "a/x/2",
            "a/y",
        ]

    def test_ancestors(self):
        hierarchy = TopicHierarchy(["a/b/c"])
        assert [topic.name for topic in hierarchy.ancestors("a/b/c")] == ["a", "a/b"]

    def test_supertopic_of(self):
        hierarchy = TopicHierarchy(["a/b/c", "a/b/d", "a/e"])
        assert hierarchy.supertopic_of(["a/b/c", "a/b/d"]).name == "a/b"
        assert hierarchy.supertopic_of(["a/b/c", "a/e"]).name == "a"
        assert hierarchy.supertopic_of([]) is None

    def test_iteration_is_sorted(self):
        hierarchy = TopicHierarchy(["z", "a/b", "a"])
        assert [topic.name for topic in hierarchy] == ["a", "a/b", "z"]

    def test_get_unknown_raises(self):
        hierarchy = TopicHierarchy(["a"])
        with pytest.raises(KeyError):
            hierarchy.get("missing")
