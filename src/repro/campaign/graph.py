"""Compile a :class:`~repro.campaign.spec.CampaignSpec` into a dependency graph.

The graph has one node per service and per target.  Edges come from three
places:

* a target depends on every service its connector tree mentions;
* a ``SEQ`` connector adds ordering edges between consecutive children
  (child *i+1* depends on child *i*);
* a service's ``after`` list adds arbitrary extra edges.

``ONE`` connectors add the same structural edges as ``ALL`` — which
alternative actually *runs* is an execution-time decision (the executor
demands one alternative at a time and short-circuits on the first fully
cached one), so the static graph deliberately over-approximates.

Compilation topologically sorts the nodes (stable: spec declaration order
breaks ties) and raises :class:`~repro.campaign.spec.CampaignError` on
cycles, naming the nodes involved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from .spec import CampaignError, CampaignSpec, Connector

__all__ = ["CampaignGraph", "compile_graph"]


@dataclass(frozen=True)
class CampaignGraph:
    """Immutable compiled dependency graph of one campaign.

    ``dependencies`` maps every node to the (ordered, de-duplicated) nodes
    it waits for; ``order`` is a deterministic topological ordering of all
    nodes; ``seq_edges`` records which dependency edges exist purely for
    ``SEQ`` sequencing (useful for display).
    """

    spec: CampaignSpec
    dependencies: Tuple[Tuple[str, Tuple[str, ...]], ...]
    order: Tuple[str, ...]
    seq_edges: Tuple[Tuple[str, str], ...]

    def dependency_map(self) -> Dict[str, Tuple[str, ...]]:
        return dict(self.dependencies)

    def dependencies_of(self, node: str) -> Tuple[str, ...]:
        return self.dependency_map().get(node, ())

    def ancestors_of(self, node: str) -> Set[str]:
        """Every node reachable backwards from ``node`` (excluding itself)."""
        deps = self.dependency_map()
        seen: Set[str] = set()
        frontier = list(deps.get(node, ()))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(deps.get(current, ()))
        return seen

    def restricted_to(self, targets: List[str]) -> Set[str]:
        """The node subset needed to build ``targets`` (them + ancestors)."""
        needed: Set[str] = set()
        for target in targets:
            needed.add(target)
            needed |= self.ancestors_of(target)
        return needed


def _connector_edges(
    target: str, connector: Connector
) -> Tuple[List[Tuple[str, str]], List[Tuple[str, str]]]:
    """``(dependency edges, SEQ-only edges)`` implied by one input tree."""
    edges: List[Tuple[str, str]] = []
    seq_edges: List[Tuple[str, str]] = []

    def last_services(child) -> List[str]:
        """Services a SEQ successor must wait for (the child's leaves)."""
        if isinstance(child, Connector):
            return child.service_names()
        return [child]

    def walk(connector: Connector) -> None:
        for child in connector.children:
            if isinstance(child, Connector):
                walk(child)
            else:
                edges.append((target, child))
        if connector.op == "seq":
            for earlier, later in zip(connector.children, connector.children[1:]):
                for before in last_services(earlier):
                    for after in last_services(later):
                        edges.append((after, before))
                        seq_edges.append((after, before))

    walk(connector)
    return edges, seq_edges


def compile_graph(spec: CampaignSpec) -> CampaignGraph:
    """Build and topologically sort the dependency graph; raises on cycles."""
    nodes = spec.service_names() + spec.target_names()
    dependencies: Dict[str, List[str]] = {node: [] for node in nodes}
    seq_edges: List[Tuple[str, str]] = []

    def add_edge(node: str, depends_on: str) -> None:
        if depends_on != node and depends_on not in dependencies[node]:
            dependencies[node].append(depends_on)

    for service in spec.services:
        for dependency in service.after:
            add_edge(service.name, dependency)
    for target in spec.targets:
        edges, seqs = _connector_edges(target.name, target.inputs)
        for node, depends_on in edges:
            add_edge(node, depends_on)
        seq_edges.extend(seqs)

    # Kahn's algorithm with a stable frontier: nodes whose dependencies are
    # all placed are appended in spec declaration order, so the ordering is
    # deterministic for a given spec.
    placed: List[str] = []
    placed_set: Set[str] = set()
    remaining = list(nodes)
    while remaining:
        progressed = False
        for node in list(remaining):
            if all(dep in placed_set for dep in dependencies[node]):
                placed.append(node)
                placed_set.add(node)
                remaining.remove(node)
                progressed = True
        if not progressed:
            raise CampaignError(
                f"campaign {spec.name!r} has a dependency cycle involving "
                f"{sorted(remaining)}"
            )
    return CampaignGraph(
        spec=spec,
        dependencies=tuple(
            (node, tuple(dependencies[node])) for node in nodes
        ),
        order=tuple(placed),
        seq_edges=tuple(dict.fromkeys(seq_edges)),
    )
