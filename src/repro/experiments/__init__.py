"""Declarative experiment harness used by benchmarks and examples."""

from .config import ExperimentConfig
from .runner import ExperimentResult, run_experiment
from .scenarios import (
    SYSTEM_NAMES,
    build_interest,
    build_membership_provider,
    build_popularity,
    build_simulation,
    build_system,
    resolve_policy,
)
from .sweeps import compare, results_table, sweep

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "sweep",
    "compare",
    "results_table",
    "build_simulation",
    "build_system",
    "build_popularity",
    "build_interest",
    "build_membership_provider",
    "resolve_policy",
    "SYSTEM_NAMES",
]
