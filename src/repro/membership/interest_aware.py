"""Interest-aware view bias.

Section 4.2 notes that in an unstructured selective dissemination system an
"appropriate" neighbour could be one that *shares similar interests*.  The
:class:`InterestAwareMembership` component wraps any underlying membership
component and biases partner selection towards peers whose advertised topics
overlap the owner's subscriptions.  A mixing parameter keeps a fraction of
selections uniform so the overlay stays connected across interest groups
(pure interest clustering would partition the graph by topic).

The wrapper also answers :meth:`peers_for_topic`, which the topic-based fair
gossip uses to forward an event preferentially to peers that want it.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from ..sim.network import Message
from ..sim.node import Process
from .base import MembershipComponent
from .views import NodeDescriptor

__all__ = ["InterestAwareMembership", "interest_aware_provider"]


class InterestAwareMembership(MembershipComponent):
    """Wraps a base membership component with interest-biased selection.

    Parameters
    ----------
    owner:
        The owning process.
    base:
        The underlying membership component that does the real work.
    topics_of:
        Callback returning the advertised topics of a peer id.  In the
        simulator this is backed by a shared subscription directory; a real
        deployment would learn the topics from descriptors.
    own_topics:
        Callback returning the owner's current topics.
    bias:
        Fraction of selections drawn from interest-overlapping peers
        (the rest stay uniform to preserve connectivity).
    """

    def __init__(
        self,
        owner: Process,
        base: MembershipComponent,
        topics_of: Callable[[str], Sequence[str]],
        own_topics: Callable[[], Sequence[str]],
        bias: float = 0.7,
    ) -> None:
        super().__init__(owner)
        if not 0.0 <= bias <= 1.0:
            raise ValueError("bias must be within [0, 1]")
        self.base = base
        self._topics_of = topics_of
        self._own_topics = own_topics
        self.bias = bias

    # ----------------------------------------------------------- delegation

    def bootstrap(self, seeds: Sequence[str]) -> None:
        self.base.bootstrap(seeds)

    def on_round(self) -> None:
        self.base.on_round()

    def handle(self, message: Message) -> bool:
        return self.base.handle(message)

    def known_peers(self) -> List[str]:
        return self.base.known_peers()

    def notify_left(self, node_id: str) -> None:
        self.base.notify_left(node_id)

    # ------------------------------------------------------------ selection

    def _overlap(self, peer_id: str, own: Set[str]) -> int:
        if not own:
            return 0
        return len(own.intersection(self._topics_of(peer_id)))

    def select_partners(
        self, count: int, rng: random.Random, exclude: Iterable[str] = ()
    ) -> List[str]:
        excluded = set(exclude) | {self.owner.node_id}
        candidates = [peer for peer in self.base.known_peers() if peer not in excluded]
        if count >= len(candidates):
            return candidates
        own = set(self._own_topics())
        biased_quota = int(round(count * self.bias))
        overlapping = sorted(
            (peer for peer in candidates if self._overlap(peer, own) > 0),
            key=lambda peer: (-self._overlap(peer, own), peer),
        )
        selection: List[str] = []
        for peer in overlapping:
            if len(selection) >= biased_quota:
                break
            selection.append(peer)
        remaining = [peer for peer in candidates if peer not in selection]
        needed = count - len(selection)
        if needed > 0 and remaining:
            selection.extend(
                rng.sample(remaining, needed) if needed < len(remaining) else remaining
            )
        return selection[:count]

    def peers_for_topic(self, topic: str, count: int, rng: random.Random) -> List[str]:
        """Known peers subscribed to ``topic`` (up to ``count``, random order)."""
        interested = [
            peer
            for peer in self.base.known_peers()
            if topic in set(self._topics_of(peer))
        ]
        if count >= len(interested):
            return interested
        return rng.sample(interested, count)


def interest_aware_provider(
    base_provider: Callable[[Process], MembershipComponent],
    topics_of: Callable[[str], Sequence[str]],
    own_topics_factory: Callable[[Process], Callable[[], Sequence[str]]],
    bias: float = 0.7,
):
    """Return a provider building interest-aware wrappers around ``base_provider``."""

    def provider(owner: Process) -> InterestAwareMembership:
        return InterestAwareMembership(
            owner,
            base=base_provider(owner),
            topics_of=topics_of,
            own_topics=own_topics_factory(owner),
            bias=bias,
        )

    return provider
