"""Tests for the multi-domain topology layer (``repro.topology``).

Covers the contract the topology subsystem promises:

* the :class:`TopologySpec` codec (JSON files, nested dicts, flat
  ``topology_*`` config fields) with did-you-mean rejection of typos;
* deterministic compilation: contiguous block assignment, pinned sha256
  bridge selection, domain-level partition maps;
* spec ↔ flat-config bijection with the PR-1/PR-3 cache keys of
  topology-free configs pinned (topology at its default must be invisible
  to every serialised form);
* the perturbation-path satellite: global ``set_perturbation`` and the
  per-link geo profile share one validation/reset path, and clearing a
  fault window never erases the geo matrix;
* bridge federation end to end: relays cross domain boundaries on both
  engines, duplicate suppression at ingress, and a domain partition that
  heals mid-run is survived by cross-domain dissemination;
* byte-identical reruns of a multi-domain simulation at a pinned seed.
"""

from __future__ import annotations

import asyncio
import hashlib
import json

import pytest

from repro.experiments import (
    ExperimentConfig,
    StackSpec,
    config_hash,
    get_scenario,
    run_experiment,
)
from repro.pubsub import TopicFilter
from repro.registry import RegistryError, parse_spec_overrides
from repro.runtime.host import NodeHost
from repro.runtime.transport import MemoryTransport
from repro.sim import Network, Simulator
from repro.sim.network import validate_link_perturbation
from repro.topology import (
    BRIDGE_MESSAGE_KIND,
    TopologyError,
    TopologySpec,
    compile_domain_map,
)

# Pinned on the PR-2 tree (see tests/test_registry_specs.py): topology-free
# configs must keep hashing to their historical cache keys.
SMOKE_CONFIG_HASH = "1cf8fcce9dce9547b8ba7d369156e39045a0194e020f154fe35dce71c1866442"


def _result_sha(result) -> str:
    blob = json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _node_ids(count: int):
    return [f"node-{index:03d}" for index in range(count)]


# ---------------------------------------------------------------------------
# Spec codec
# ---------------------------------------------------------------------------


class TestTopologySpecCodec:
    def test_default_spec_is_disabled_and_serialises_empty(self):
        spec = TopologySpec()
        assert not spec.enabled
        assert spec.to_dict() == {}
        assert TopologySpec.from_dict({}) == spec

    def test_dict_round_trip(self):
        spec = TopologySpec(
            domains=4,
            bridges_per_domain=2,
            bridge_policy="lexical",
            cross_latency=1.5,
            cross_loss=0.05,
            geo=(("d0", "d1", 0.4, 0.0), ("d2", "d3", 0.6, 0.01)),
        )
        assert TopologySpec.from_dict(spec.to_dict()) == spec
        json.dumps(spec.to_dict())  # encoding must be JSON-clean

    def test_file_round_trip_with_schema_tag(self, tmp_path):
        spec = TopologySpec(domains=2, cross_latency=1.0)
        path = tmp_path / "topo.json"
        path.write_text(json.dumps(spec.to_file_dict()))
        assert spec.to_file_dict()["schema"] == "topology/v1"
        assert TopologySpec.from_file(str(path)) == spec

    def test_wrong_schema_tag_rejected(self, tmp_path):
        path = tmp_path / "topo.json"
        path.write_text(json.dumps({"schema": "faults/v1", "domains": 2}))
        with pytest.raises(TopologyError, match="topology/v1"):
            TopologySpec.from_file(str(path))

    def test_unknown_field_rejected_with_suggestion(self):
        with pytest.raises(TopologyError, match="did you mean 'domains'"):
            TopologySpec.from_dict({"domans": 4})

    def test_unknown_bridge_policy_rejected_with_suggestion(self):
        with pytest.raises(TopologyError, match="did you mean 'sha256'"):
            TopologySpec(domains=2, bridge_policy="sha255").validate()

    def test_field_ranges_validated(self):
        with pytest.raises(TopologyError, match="cross_latency"):
            TopologySpec(domains=2, cross_latency=-1.0).validate()
        with pytest.raises(TopologyError, match="cross_loss"):
            TopologySpec(domains=2, cross_loss=1.5).validate()
        with pytest.raises(TopologyError, match="bridges_per_domain"):
            TopologySpec(domains=2, bridges_per_domain=0).validate()
        with pytest.raises(TopologyError, match="more than one domain"):
            TopologySpec(assignment=(("n1", "a"), ("n1", "b"))).validate()

    def test_mistyped_geo_entries_rejected(self):
        with pytest.raises(TopologyError, match="geo"):
            TopologySpec.from_dict({"geo": [["d0", "d1", "fast", 0.0]]})
        with pytest.raises(TopologyError, match="geo"):
            TopologySpec.from_dict({"geo": [["d0", "d1"]]})


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


class TestDomainMapCompile:
    def test_contiguous_block_auto_assignment(self):
        domain_map = compile_domain_map(TopologySpec(domains=4), _node_ids(24))
        assert domain_map.domains == ("d0", "d1", "d2", "d3")
        assert domain_map.members["d0"] == tuple(_node_ids(6))
        assert domain_map.domain("node-006") == "d1"
        assert domain_map.domain("node-023") == "d3"
        assert domain_map.domain("stranger") is None

    def test_sha256_bridge_selection_is_pinned(self):
        # Selection is keyed by sha256(domain + "/" + node): stable across
        # processes, seeds, and Python versions.  These literals are the
        # layer's determinism contract — a change here silently reshuffles
        # every multi-domain experiment.
        domain_map = compile_domain_map(
            TopologySpec(domains=2, bridges_per_domain=2), _node_ids(8)
        )
        assert domain_map.bridges == {
            "d0": ("node-002", "node-001"),
            "d1": ("node-006", "node-005"),
        }
        four = compile_domain_map(TopologySpec(domains=4), _node_ids(24))
        assert four.bridges == {
            "d0": ("node-002",),
            "d1": ("node-006",),
            "d2": ("node-017",),
            "d3": ("node-023",),
        }

    def test_lexical_bridge_policy_takes_sorted_heads(self):
        domain_map = compile_domain_map(
            TopologySpec(domains=2, bridges_per_domain=2, bridge_policy="lexical"),
            _node_ids(8),
        )
        assert domain_map.bridges == {
            "d0": ("node-000", "node-001"),
            "d1": ("node-004", "node-005"),
        }

    def test_explicit_assignment_defines_the_layout(self):
        spec = TopologySpec(
            assignment=(
                ("node-000", "eu"),
                ("node-001", "eu"),
                ("node-002", "us"),
                ("node-003", "us"),
            )
        )
        domain_map = compile_domain_map(spec, _node_ids(4))
        assert domain_map.domains == ("eu", "us")
        assert domain_map.members["eu"] == ("node-000", "node-001")

    def test_incomplete_assignment_rejected(self):
        spec = TopologySpec(assignment=(("node-000", "eu"),))
        with pytest.raises(TopologyError, match="unassigned"):
            compile_domain_map(spec, _node_ids(3))

    def test_assignment_with_unknown_node_rejected_with_suggestion(self):
        spec = TopologySpec(assignment=(("node-00", "eu"),))
        with pytest.raises(TopologyError, match="did you mean"):
            compile_domain_map(spec, _node_ids(3))

    def test_more_domains_than_nodes_rejected(self):
        with pytest.raises(TopologyError, match="exceeds the node count"):
            compile_domain_map(TopologySpec(domains=5), _node_ids(3))

    def test_geo_matrix_overrides_cross_defaults(self):
        spec = TopologySpec(
            domains=4,
            cross_latency=2.0,
            cross_loss=0.1,
            geo=(("d0", "d1", 0.25, 0.0), ("d3", "d2", 0.5, 0.02)),
        )
        domain_map = compile_domain_map(spec, _node_ids(8))
        assert domain_map.link("d0", "d1") == (0.25, 0.0)
        # unordered pair: the (d3, d2) entry answers (d2, d3) too
        assert domain_map.link("d2", "d3") == (0.5, 0.02)
        assert domain_map.link("d0", "d3") == (2.0, 0.1)  # matrix default
        assert domain_map.link("d1", "d1") == (0.0, 0.0)  # intra-domain free

    def test_geo_with_unknown_domain_rejected_with_suggestion(self):
        spec = TopologySpec(domains=2, geo=(("d0", "d9", 1.0, 0.0),))
        with pytest.raises(TopologyError, match="did you mean"):
            compile_domain_map(spec, _node_ids(4))

    def test_partition_assignment_isolates_named_domains(self):
        domain_map = compile_domain_map(TopologySpec(domains=4), _node_ids(8))
        assignment = domain_map.partition_assignment(["d1"])
        assert assignment["node-002"] == 1 and assignment["node-003"] == 1
        assert sum(assignment.values()) == 2
        with pytest.raises(TopologyError, match="did you mean"):
            domain_map.partition_assignment(["d11"])


# ---------------------------------------------------------------------------
# Flat ↔ nested bijection and cache-key neutrality
# ---------------------------------------------------------------------------


class TestSpecTopologyIntegration:
    def test_topology_free_configs_keep_pinned_cache_keys(self):
        smoke = get_scenario("smoke").config
        assert config_hash(smoke) == SMOKE_CONFIG_HASH
        # A spec round trip through the topology-aware StackSpec is free.
        assert config_hash(StackSpec.from_config(smoke).to_config()) == SMOKE_CONFIG_HASH
        assert not any(key.startswith("topology_") for key in smoke.to_dict())
        assert "topology" not in StackSpec.from_config(smoke).to_dict()

    def test_topology_fields_round_trip_flat_and_nested(self):
        config = ExperimentConfig(
            topology_domains=4,
            topology_bridges_per_domain=2,
            topology_cross_latency=1.0,
            topology_cross_loss=0.02,
            topology_geo=(("d0", "d1", 0.4, 0.0),),
        )
        spec = StackSpec.from_config(config)
        assert spec.topology.domains == 4
        assert spec.get("topology.bridges_per_domain") == 2
        assert spec.topology.geo == (("d0", "d1", 0.4, 0.0),)
        assert spec.to_config() == config
        assert StackSpec.from_dict(spec.to_dict()) == spec
        assert ExperimentConfig.from_dict(config.to_dict()) == config
        json.dumps(spec.to_dict())  # nested encoding must be JSON-clean
        json.dumps(config.to_dict())

    def test_to_flat_covers_every_spec_field(self):
        spec = TopologySpec(domains=3, bridge_policy="lexical")
        config = ExperimentConfig().with_overrides(**spec.to_flat())
        assert StackSpec.from_config(config).topology == spec

    def test_scenario_round_trips_never_perturb_cache_keys(self):
        scenario = get_scenario("smoke-domains")
        assert config_hash(scenario.spec.to_config()) == config_hash(scenario.config)

    def test_dotted_topology_overrides_parse(self):
        overrides = parse_spec_overrides(
            ["topology.domains=4", "topology.cross_latency=2"]
        )
        spec = StackSpec().with_values(overrides)
        assert spec.topology.domains == 4
        assert spec.topology.cross_latency == 2.0  # int → float widening

    def test_structured_topology_fields_not_settable_from_cli(self):
        with pytest.raises(RegistryError, match="--topology"):
            parse_spec_overrides(["topology.assignment=x"])
        with pytest.raises(RegistryError, match="--topology"):
            parse_spec_overrides(["topology.geo=x"])

    def test_describe_lists_topology_params(self):
        described = get_scenario("smoke-domains").spec.describe()
        assert "topology.domains = 4" in described
        assert "topology.bridges_per_domain = 2" in described

    def test_topology_requires_a_gossip_family_system(self):
        config = ExperimentConfig(system="brokers", topology_domains=2, nodes=8)
        with pytest.raises(RegistryError, match="gossip-family"):
            run_experiment(config)

    def test_invalid_topology_surfaces_as_registry_error(self):
        spec_dict = StackSpec().to_dict()
        spec_dict["topology"] = {"domans": 2}
        with pytest.raises(RegistryError, match="did you mean"):
            StackSpec.from_dict(spec_dict)


# ---------------------------------------------------------------------------
# Perturbation path regression (shared validation, geo survives fault windows)
# ---------------------------------------------------------------------------


class TestPerturbationPaths:
    def _network(self):
        simulator = Simulator(seed=3)
        return simulator, Network(simulator)

    def test_global_perturbation_error_messages_unchanged(self):
        _, network = self._network()
        with pytest.raises(ValueError, match="extra_latency must be non-negative"):
            network.set_perturbation(extra_latency=-1.0)
        with pytest.raises(ValueError, match="loss_rate must be within"):
            network.set_perturbation(loss_rate=1.5)
        with pytest.raises(ValueError, match="requires an rng stream"):
            network.set_perturbation(loss_rate=0.5)

    def test_shared_validator_matches_global_path(self):
        # Both actuators route through validate_link_perturbation: the
        # direct call must reject exactly what set_perturbation rejects.
        with pytest.raises(ValueError, match="extra_latency must be non-negative"):
            validate_link_perturbation(-1.0, 0.0, None)
        with pytest.raises(ValueError, match="loss_rate must be within"):
            validate_link_perturbation(0.0, 2.0, None)
        with pytest.raises(ValueError, match="requires an rng stream"):
            validate_link_perturbation(0.0, 0.5, None)
        validate_link_perturbation(1.0, 0.0, None)  # lossless needs no rng

    def test_clear_perturbation_leaves_geo_link_profile_installed(self):
        from repro.topology import GeoLinkProfile

        simulator, network = self._network()
        domain_map = compile_domain_map(
            TopologySpec(domains=2, cross_latency=3.0), _node_ids(4)
        )
        profile = GeoLinkProfile(domain_map, rng=simulator.rng.stream("topology-geo"))
        network.set_link_profile(profile)
        network.set_perturbation(extra_latency=5.0)
        network.clear_perturbation()  # the fault window ends...
        assert network._link_profile is profile  # ...the geography does not

    def test_geo_latency_applies_per_link(self):
        from repro.topology import GeoLinkProfile

        simulator, network = self._network()
        domain_map = compile_domain_map(
            TopologySpec(domains=2, cross_latency=4.0), _node_ids(4)
        )
        network.set_link_profile(
            GeoLinkProfile(domain_map, rng=simulator.rng.stream("topology-geo"))
        )
        arrivals = {}
        for node in _node_ids(4):
            network.register(
                node,
                lambda message: arrivals.update(
                    {(message.sender, message.recipient): simulator.now}
                ),
            )
        network.send("node-000", "node-001", "ping")  # intra d0
        network.send("node-000", "node-002", "ping")  # d0 -> d1
        simulator.run(until=20.0)
        intra = arrivals[("node-000", "node-001")]
        cross = arrivals[("node-000", "node-002")]
        assert cross == pytest.approx(intra + 4.0)


# ---------------------------------------------------------------------------
# Bridge federation end to end
# ---------------------------------------------------------------------------


def _domains_config(**overrides) -> ExperimentConfig:
    base = dict(
        name="topology-test",
        nodes=16,
        topics=4,
        interest_model="uniform",
        topics_per_node=2,
        publication_rate=2.0,
        duration=6.0,
        drain_time=6.0,
        fanout=3,
        gossip_size=8,
        seed=11,
        topology_domains=4,
        topology_bridges_per_domain=2,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestBridgeFederation:
    def test_events_cross_domains_through_bridges(self):
        result = run_experiment(_domains_config(), keep_system=True)
        system = result.system
        router = system.topology.router
        assert router.relayed > 0
        assert router.absorbed > 0
        # Every domain delivers: dissemination is not trapped intra-domain.
        domain_map = system.topology.domain_map
        delivered_domains = {
            domain_map.domain(record.node_id)
            for record in system.delivery_log.ordered_records()
        }
        assert delivered_domains == set(domain_map.domains)
        assert result.reliability.delivery_ratio > 0.9

    def test_bridge_telemetry_counters_are_domain_tagged(self):
        result = run_experiment(_domains_config())
        snapshot = result.final_snapshot
        relayed = snapshot.counters_by_tag("bridge.relayed", "domain")
        absorbed = snapshot.counters_by_tag("bridge.absorbed", "domain")
        assert relayed and absorbed
        assert set(relayed) <= {"d0", "d1", "d2", "d3"}

    def test_ingress_suppresses_duplicates(self):
        result = run_experiment(_domains_config(), keep_system=True)
        router = result.system.topology.router
        # Bridges re-relay on every gossip receipt (that is what makes a
        # healed partition survivable), so ingress must be dropping the
        # repeats — absorbed counts unique (event, domain) arrivals only.
        assert router.duplicates > 0
        assert router.absorbed < router.absorbed + router.duplicates

    def test_domain_tagged_latency_histograms_recorded(self):
        result = run_experiment(_domains_config())
        snapshot = result.final_snapshot
        domains_seen = {
            dict(tags).get("domain")
            for name, tags, _ in snapshot.histograms
            if name == "sim.delivery_latency" and dict(tags).get("domain")
        }
        assert domains_seen == {"d0", "d1", "d2", "d3"}

    def test_bridge_relays_ride_the_wire_codec(self):
        from repro.gossip.push import GossipMessage
        from repro.pubsub.events import Event
        from repro.runtime.wire import decode_message, encode_message
        from repro.sim.network import Message

        event = Event(
            event_id="node-000#0", publisher="node-000", attributes={"topic": "t"}
        )
        message = Message(
            sender="node-002",
            recipient="node-006",
            kind=BRIDGE_MESSAGE_KIND,
            payload=GossipMessage(events=(event,)),
            size=1,
            sent_at=0.0,
        )
        decoded = decode_message(encode_message(message))
        assert decoded.kind == BRIDGE_MESSAGE_KIND
        assert decoded.payload.events[0].event_id == "node-000#0"


class TestDomainPartitionHeal:
    def test_simulator_heals_domain_partition(self):
        config = _domains_config(
            fault_plan=(
                (
                    ("kind", "partition"),
                    ("at", 2.0),
                    ("heal_after", 2.0),
                    ("domains", ("d1",)),
                ),
            ),
        )
        result = run_experiment(config, keep_system=True)
        snapshot = result.final_snapshot
        assert snapshot.counter_value("fault.events", action="partition") == 1
        assert snapshot.counter_value("fault.events", action="heal") == 1
        assert result.system.network.stats.dropped_partition > 0
        # Cross-domain dissemination survives the healed window.
        assert result.reliability.delivery_ratio > 0.9

    def test_unknown_partition_domain_fails_at_build_time(self):
        config = _domains_config(
            fault_plan=(
                (
                    ("kind", "partition"),
                    ("at", 2.0),
                    ("heal_after", 2.0),
                    ("domains", ("d9",)),
                ),
            ),
        )
        with pytest.raises(ValueError, match="did you mean"):
            run_experiment(config)

    def test_domain_partition_without_topology_fails_fast(self):
        config = ExperimentConfig(
            nodes=8,
            fault_plan=(
                (
                    ("kind", "partition"),
                    ("at", 1.0),
                    ("heal_after", 1.0),
                    ("domains", ("d1",)),
                ),
            ),
        )
        with pytest.raises(ValueError, match="no topology"):
            run_experiment(config)

    def test_live_cluster_heals_domain_partition(self):
        async def scenario():
            config = ExperimentConfig(
                nodes=8,
                topics=2,
                seed=42,
                topology_domains=2,
                topology_bridges_per_domain=2,
                fault_plan=(
                    (
                        ("kind", "partition"),
                        ("at", 0.0),
                        ("heal_after", 4.0),
                        ("domains", ("d1",)),
                    ),
                ),
            )
            host = NodeHost(
                MemoryTransport(), seed=42, time_scale=20.0, spec=config.spec()
            )
            await host.start()
            node_ids = host.node_ids()
            for node_id in node_ids:
                host.subscribe(node_id, TopicFilter("news"))
            await asyncio.sleep(0.05)  # partition is installed and active
            event = host.publish("node-000", topic="news")  # publisher in d0
            await asyncio.sleep(0.1)  # still split: d1 stays dark
            mid_run = {
                record.node_id
                for record in host.delivery_log.deliveries_of_event(event.event_id)
            }
            await asyncio.sleep(3.0)  # healed at 0.2s; bridges catch up
            await host.stop()
            delivered_to = {
                record.node_id
                for record in host.delivery_log.deliveries_of_event(event.event_id)
            }
            return host, mid_run, delivered_to, set(node_ids)

        host, mid_run, delivered_to, universe = asyncio.run(scenario())
        d1 = {"node-004", "node-005", "node-006", "node-007"}
        assert not (mid_run & d1)  # the isolated domain was dark mid-split
        assert host.network.stats.dropped_partition > 0
        # The topology claim: every node of the *isolated* domain lights up
        # after the heal — the bridges re-relayed across the healed cut.
        # (Intra-domain stragglers are ordinary gossip timing, not topology.)
        assert d1 <= delivered_to


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


class TestTopologyDeterminism:
    def test_multi_domain_run_is_byte_identical_on_rerun(self):
        config = _domains_config(topology_cross_latency=1.0, topology_cross_loss=0.02)
        first = run_experiment(config)
        second = run_experiment(config)
        assert _result_sha(first) == _result_sha(second)

    def test_smoke_domains_scenario_is_deterministic(self):
        config = get_scenario("smoke-domains").config
        assert _result_sha(run_experiment(config)) == _result_sha(run_experiment(config))
