"""Built-in component registrations and the registry-driven stack builder.

This module populates the five registries — :data:`SYSTEMS`,
:data:`MEMBERSHIP`, :data:`INTEREST`, :data:`WORKLOADS`, :data:`POLICIES` —
with every protocol in the repository, and provides
:func:`build_stack`: the single construction function both the simulator
runner and the live runtime call.

System factories receive a :class:`BuildContext` carrying the scheduling
substrate; because the live :class:`~repro.runtime.scheduler.AsyncScheduler`
and :class:`~repro.runtime.network.RuntimeNetwork` duck-type the simulator's
``Simulator``/``Network`` surface, the *same factory* builds a system for
either world — which is what lets ``python -m repro serve --scenario X``
run any registered scenario live.

Registering your own protocol::

    from repro.registry import SYSTEMS, Param

    def build_my_system(ctx):
        return MySystem(ctx.scheduler, ctx.network, list(ctx.node_ids),
                        fanout=ctx.spec.system.fanout)

    SYSTEMS.register(
        "my-system", build_my_system,
        description="What it does and which baseline it answers",
        params=[Param("fanout", 3, "peers contacted per round")],
    )

after which ``--system my-system``, ``--set system.kind=my-system``, sweeps,
caching, and ``serve --scenario`` all pick it up with no dispatch edits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

from ..brokers import BrokerSystem
from ..core import (
    EXPRESSIVE_POLICY,
    TOPIC_BASED_POLICY,
    FairGossipSystem,
    FairnessPolicy,
    fair_node_kwargs,
)
from ..damulticast import DataAwareMulticastSystem
from ..dht import DksSystem, ScribeSystem, SplitStreamSystem
from ..gossip import GossipSystem, LazyPushGossipNode, PushPullGossipNode, lazy_store_ids
from ..membership import cyclon_provider, full_membership_provider, lpbcast_provider
from ..pubsub.topics import TopicHierarchy
from ..topology import (
    BridgeRouter,
    GeoLinkProfile,
    TopologyError,
    TopologyRuntime,
    compile_domain_map,
    domain_scoped_provider,
)
from ..workloads import (
    AttributeInterest,
    CommunityInterest,
    ContentPublicationWorkload,
    TopicPopularity,
    TopicPublicationWorkload,
    UniformInterest,
    ZipfInterest,
)
from .base import Param, Registry, RegistryError, suggest
from .specs import StackSpec

__all__ = [
    "SYSTEMS",
    "MEMBERSHIP",
    "INTEREST",
    "WORKLOADS",
    "POLICIES",
    "BuildContext",
    "build_stack",
    "build_popularity",
    "build_interest_model",
    "build_workload",
    "workload_kind",
    "resolve_policy_kind",
    "all_registries",
    "DIGEST_MEMBERSHIP_KINDS",
]

SYSTEMS = Registry("system")
MEMBERSHIP = Registry("membership")
INTEREST = Registry("interest model")
WORKLOADS = Registry("workload")
POLICIES = Registry("fairness policy")


def all_registries() -> Dict[str, Registry]:
    """The five registries, keyed by their spec section name."""
    return {
        "system": SYSTEMS,
        "membership": MEMBERSHIP,
        "interest": INTEREST,
        "workload": WORKLOADS,
        "policy": POLICIES,
    }


@dataclass
class BuildContext:
    """Everything a system factory needs to assemble a stack.

    ``scheduler`` and ``network`` are either the discrete-event pair
    (:class:`~repro.sim.engine.Simulator`, :class:`~repro.sim.network.Network`)
    or the live pair (:class:`~repro.runtime.scheduler.AsyncScheduler`,
    :class:`~repro.runtime.network.RuntimeNetwork`); factories must only use
    the shared duck-typed surface (``now``, ``rng``, ``schedule*``,
    ``register``/``send``/``alive_nodes``).

    ``live`` marks runtime builds.  Factories may apply live-only tuning
    (for example the gossip buffer extras) behind it, but must NOT let it
    change simulator behaviour: the simulator's config→result function is
    cache-keyed without a schema bump, so it has to stay exactly as it was.
    """

    spec: StackSpec
    scheduler: Any
    network: Any
    node_ids: Sequence[str]
    popularity: Optional[TopicPopularity] = None
    live: bool = False
    #: Shared :class:`~repro.telemetry.Telemetry` store, or ``None``.
    #: Gossip-family factories hand it to their nodes so node-level
    #: instruments (round/message/delivery counters, controller gauges)
    #: appear in snapshots of spec-built stacks in both worlds.  Purely
    #: observational: recording draws no randomness and schedules nothing,
    #: so simulator results are bit-identical with or without it.
    telemetry: Optional[Any] = None
    #: Compiled :class:`~repro.topology.domains.DomainMap` when the spec has
    #: a topology section; constrains membership sampling to intra-domain
    #: views (see :meth:`membership_provider`) and is consumed by
    #: :func:`build_stack` to install the geo matrix and bridge relays.
    domain_map: Optional[Any] = None

    def membership_provider(self):
        """Build the membership provider named by ``spec.membership.kind``.

        Under a multi-domain topology the provider is wrapped so every
        node's view stays inside its own domain — cross-domain traffic goes
        through bridge relays, never through gossip partner selection.
        """
        provider = MEMBERSHIP.get(self.spec.membership.kind).factory(self)
        if self.domain_map is not None:
            provider = domain_scoped_provider(provider, self.domain_map)
        return provider

    def policy(self) -> FairnessPolicy:
        """Resolve the fairness policy named by ``spec.policy.kind``."""
        return POLICIES.get(self.spec.policy.kind).factory(self.spec)


# --------------------------------------------------------------- popularity


def build_popularity(spec: StackSpec) -> TopicPopularity:
    """Topic popularity for a spec (hierarchical for the dam system)."""
    workload = spec.workload
    if spec.system.kind == "dam":
        roots = max(2, workload.topics // 4)
        children = max(2, workload.topics // roots)
        return TopicPopularity.hierarchy(roots, children, exponent=workload.topic_exponent)
    if workload.topic_exponent <= 0:
        return TopicPopularity.uniform(workload.topics)
    return TopicPopularity.zipf(workload.topics, exponent=workload.topic_exponent)


# ------------------------------------------------------------------ systems


def _apply_live_extras(kwargs: Dict[str, object], ctx: BuildContext) -> Dict[str, object]:
    """Apply live-only gossip tuning extras (no-op in simulator builds).

    ``buffer_capacity``/``selection_strategy`` in ``spec.extra`` tune live
    clusters for wall-clock load.  Simulator builds ignore them so the
    cached config→result function is bit-identical to pre-registry code.
    """
    if ctx.live:
        extras = ctx.spec.extra_dict()
        for key in ("buffer_capacity", "selection_strategy"):
            if key in extras:
                kwargs[key] = extras[key]
    return kwargs


def _gossip_node_kwargs(ctx: BuildContext) -> Dict[str, object]:
    """Common gossip node parameters, plus live-tuning extras if live."""
    spec = ctx.spec
    kwargs: Dict[str, object] = {
        "fanout": spec.system.fanout,
        "gossip_size": spec.system.gossip_size,
        "round_period": spec.system.round_period,
    }
    if ctx.telemetry is not None:
        kwargs["telemetry"] = ctx.telemetry
    return _apply_live_extras(kwargs, ctx)


def _build_push_gossip(ctx: BuildContext) -> GossipSystem:
    return GossipSystem(
        ctx.scheduler,
        ctx.network,
        list(ctx.node_ids),
        membership_provider=ctx.membership_provider(),
        node_kwargs=_gossip_node_kwargs(ctx),
    )


def _build_fair_gossip(ctx: BuildContext) -> FairGossipSystem:
    spec = ctx.spec
    node_kwargs = fair_node_kwargs(
        fanout=spec.system.fanout,
        gossip_size=spec.system.gossip_size,
        round_period=spec.system.round_period,
        min_fanout=spec.system.min_fanout,
        max_fanout=spec.system.max_fanout,
        min_payload=spec.system.min_payload,
        max_payload=spec.system.max_payload,
        policy=ctx.policy(),
        adapt_fanout=spec.system.adapt_fanout,
        adapt_payload=spec.system.adapt_payload,
    )
    if ctx.telemetry is not None:
        node_kwargs["telemetry"] = ctx.telemetry
    node_kwargs = _apply_live_extras(node_kwargs, ctx)
    return FairGossipSystem(
        ctx.scheduler,
        ctx.network,
        list(ctx.node_ids),
        membership_provider=ctx.membership_provider(),
        node_kwargs=node_kwargs,
    )


def _build_pushpull_gossip(ctx: BuildContext) -> GossipSystem:
    return GossipSystem(
        ctx.scheduler,
        ctx.network,
        list(ctx.node_ids),
        membership_provider=ctx.membership_provider(),
        node_class=PushPullGossipNode,
        node_kwargs=_gossip_node_kwargs(ctx),
    )


#: Membership kinds whose views keep pace with digest-driven recovery.
#: Lazy-push routes pulls at arbitrary store nodes, so it needs a provider
#: that can resolve (or gossip toward) the whole population — every built-in
#: qualifies today, but external registrations must opt in by name here.
DIGEST_MEMBERSHIP_KINDS = frozenset({"cyclon", "full", "lpbcast"})


def _build_lazy_push(ctx: BuildContext) -> GossipSystem:
    spec = ctx.spec
    alpha = spec.system.alpha
    if isinstance(alpha, bool) or not isinstance(alpha, (int, float)) or not 0.0 < alpha <= 1.0:
        raise RegistryError(
            f"system.alpha must be a store fraction in (0, 1], got {alpha!r} "
            "(0.5 stores payloads on half the nodes)"
        )
    membership_kind = spec.membership.kind
    if membership_kind not in DIGEST_MEMBERSHIP_KINDS:
        raise RegistryError(
            f"system.kind 'lazy-push' needs a digest-capable membership "
            f"provider, got {membership_kind!r}"
            f"{suggest(membership_kind, DIGEST_MEMBERSHIP_KINDS)}; "
            f"digest-capable kinds: {', '.join(sorted(DIGEST_MEMBERSHIP_KINDS))}"
        )
    node_kwargs = _gossip_node_kwargs(ctx)
    node_kwargs["alpha"] = float(alpha)
    node_kwargs["store_ids"] = lazy_store_ids(ctx.node_ids, float(alpha))
    node_kwargs["population"] = len(ctx.node_ids)
    return GossipSystem(
        ctx.scheduler,
        ctx.network,
        list(ctx.node_ids),
        membership_provider=ctx.membership_provider(),
        node_class=LazyPushGossipNode,
        node_kwargs=node_kwargs,
    )


def _build_scribe(ctx: BuildContext) -> ScribeSystem:
    return ScribeSystem(ctx.scheduler, ctx.network, list(ctx.node_ids))


def _build_splitstream(ctx: BuildContext) -> SplitStreamSystem:
    return SplitStreamSystem(
        ctx.scheduler, ctx.network, list(ctx.node_ids), stripes=ctx.spec.system.stripes
    )


def _build_dks(ctx: BuildContext) -> DksSystem:
    return DksSystem(ctx.scheduler, ctx.network, list(ctx.node_ids))


def _build_brokers(ctx: BuildContext) -> BrokerSystem:
    return BrokerSystem(
        ctx.scheduler,
        ctx.network,
        list(ctx.node_ids),
        broker_count=ctx.spec.system.broker_count,
    )


def _build_dam(ctx: BuildContext) -> DataAwareMulticastSystem:
    hierarchy = TopicHierarchy(
        ctx.popularity.topics if ctx.popularity is not None else ()
    )
    return DataAwareMulticastSystem(
        ctx.scheduler,
        ctx.network,
        list(ctx.node_ids),
        hierarchy=hierarchy,
        fanout=ctx.spec.system.fanout,
        delegates_per_root=ctx.spec.system.delegates_per_root,
    )


_GOSSIP_PARAMS = (
    Param("fanout", 3, "peers contacted per round (Figure 4's F)"),
    Param("gossip_size", 8, "events per gossip message (Figure 4's N)"),
    Param("round_period", 1.0, "gossip round length in time units"),
)

SYSTEMS.register(
    "gossip",
    _build_push_gossip,
    description="Classic push gossip (Figure 4) over a pluggable membership view",
    params=_GOSSIP_PARAMS,
)
SYSTEMS.register(
    "fair-gossip",
    _build_fair_gossip,
    description="Push gossip with benefit-driven adaptive fanout/payload (§5.2)",
    params=_GOSSIP_PARAMS
    + (
        Param("adapt_fanout", True, "enable the fanout lever"),
        Param("adapt_payload", True, "enable the payload lever"),
        Param("min_fanout", 1, "fanout floor (keeps the overlay connected)"),
        Param("max_fanout", 12, "fanout ceiling"),
        Param("min_payload", 1, "payload floor"),
        Param("max_payload", 32, "payload ceiling"),
        Param("selfish_fraction", 0.0, "fraction of selfish nodes (attack ablations)"),
    ),
)
SYSTEMS.register(
    "pushpull-gossip",
    _build_pushpull_gossip,
    description="Digest/pull gossip variant trading latency for bandwidth",
    params=_GOSSIP_PARAMS,
)
SYSTEMS.register(
    "lazy-push",
    _build_lazy_push,
    description="Two-phase lazy probabilistic broadcast: eager push, then digest-driven pull recovery from an ALPHA-fraction store set",
    params=_GOSSIP_PARAMS
    + (Param("alpha", 0.5, "fraction of nodes storing payloads for recovery"),),
)
SYSTEMS.register(
    "scribe",
    _build_scribe,
    description="Scribe-style per-topic multicast trees over a Pastry router (§3.1)",
)
SYSTEMS.register(
    "splitstream",
    _build_splitstream,
    description="SplitStream striping over Scribe trees (load balance, §3.1)",
    params=(Param("stripes", 4, "stripe trees per topic"),),
)
SYSTEMS.register(
    "dks",
    _build_dks,
    description="DKS-style rendezvous grouping on a DHT (§3.2)",
)
SYSTEMS.register(
    "brokers",
    _build_brokers,
    description="Dedicated broker overlay (centralised baseline, §3.3)",
    params=(Param("broker_count", 2, "number of broker nodes"),),
)
SYSTEMS.register(
    "dam",
    _build_dam,
    description="Data-aware multicast: topic-hierarchy groups with delegates (§3.4)",
    params=(
        Param("fanout", 3, "in-group gossip fanout"),
        Param("delegates_per_root", 2, "delegates recruited per root topic"),
    ),
)


# --------------------------------------------------------------- membership

MEMBERSHIP.register(
    "cyclon",
    lambda ctx: cyclon_provider(),
    description="CYCLON view shuffling (partial views, age-based eviction)",
)
MEMBERSHIP.register(
    "full",
    lambda ctx: full_membership_provider(ctx.network),
    description="Full-membership oracle (isolates dissemination from membership noise)",
)
MEMBERSHIP.register(
    "lpbcast",
    lambda ctx: lpbcast_provider(),
    description="lpbcast-style piggybacked membership digests",
)


# ----------------------------------------------------------------- interest

INTEREST.register(
    "uniform",
    lambda spec, popularity: UniformInterest(
        popularity, topics_per_node=spec.interest.topics_per_node
    ),
    description="Every node subscribes to a fixed number of uniformly drawn topics",
    params=(Param("topics_per_node", 2, "subscriptions per node"),),
)
INTEREST.register(
    "zipf",
    lambda spec, popularity: ZipfInterest(
        popularity, min_topics=1, max_topics=spec.interest.max_topics_per_node
    ),
    description="Skewed interest: popular topics attract most subscriptions",
    params=(Param("max_topics_per_node", 8, "upper bound on subscriptions per node"),),
)
INTEREST.register(
    "community",
    lambda spec, popularity: CommunityInterest(
        popularity, topics_per_node=spec.interest.topics_per_node
    ),
    description="Clustered interest: communities of nodes share topic sets",
    params=(Param("topics_per_node", 2, "subscriptions per node"),),
)
INTEREST.register(
    "content",
    lambda spec, popularity: AttributeInterest(
        filters_per_node=spec.interest.topics_per_node
    ),
    description="Content-based attribute filters instead of topics",
    params=(Param("topics_per_node", 2, "filters per node"),),
)


def build_interest_model(spec: StackSpec, popularity: TopicPopularity):
    """Interest model for a spec (registry-backed)."""
    return INTEREST.get(spec.interest.kind).factory(spec, popularity)


# ---------------------------------------------------------------- workloads


def _build_topic_workload(system, scheduler, spec, popularity, publishers, interest_model):
    return TopicPublicationWorkload(
        system,
        scheduler,
        popularity,
        publishers,
        rate=spec.workload.publication_rate,
        event_size=spec.workload.event_size,
    )


def _build_content_workload(system, scheduler, spec, popularity, publishers, interest_model):
    return ContentPublicationWorkload(
        system,
        scheduler,
        interest_model,
        publishers,
        rate=spec.workload.publication_rate,
    )


WORKLOADS.register(
    "topics",
    _build_topic_workload,
    description="Topic events drawn from the popularity distribution",
    params=(
        Param("topics", 16, "topic universe size"),
        Param("topic_exponent", 1.0, "Zipf popularity exponent (0 = uniform)"),
        Param("publication_rate", 4.0, "events per time unit"),
        Param("publisher_fraction", 0.25, "fraction of nodes that publish"),
        Param("event_size", 1, "abstract size units per event"),
        Param("subscription_churn_rate", 0.0, "subscribe/unsubscribe ops per time unit"),
    ),
)
WORKLOADS.register(
    "content",
    _build_content_workload,
    description="Attribute events matched against content-based filters",
    params=(
        Param("publication_rate", 4.0, "events per time unit"),
        Param("publisher_fraction", 0.25, "fraction of nodes that publish"),
    ),
)


def workload_kind(spec: StackSpec) -> str:
    """Which workload component a spec uses (content-based when interest is)."""
    return "content" if spec.interest.kind == "content" else "topics"


def build_workload(spec: StackSpec, system, scheduler, popularity, publishers, interest_model):
    """Publication workload for a spec (see :func:`workload_kind`)."""
    return WORKLOADS.get(workload_kind(spec)).factory(
        system, scheduler, spec, popularity, publishers, interest_model
    )


# ----------------------------------------------------------------- policies

POLICIES.register(
    "expressive",
    lambda spec: EXPRESSIVE_POLICY,
    description="Figure 3 weights: filter expressiveness scales the benefit term",
    aliases=("figure3",),
)
POLICIES.register(
    "topic",
    lambda spec: TOPIC_BASED_POLICY,
    description="Figure 2 weights: plain topic-count benefit",
    aliases=("topic-based", "figure2"),
)


def resolve_policy_kind(kind: str) -> FairnessPolicy:
    """The fairness policy registered under ``kind`` (or an alias)."""
    return POLICIES.get(kind).factory(None)


# -------------------------------------------------------------- build_stack

#: System kinds a multi-domain topology can constrain: the gossip family,
#: whose nodes sample partners through a membership provider the topology
#: layer can scope.  Tree/DHT/broker baselines route by identifier, so a
#: domain map would silently mean nothing there — reject instead.
_TOPOLOGY_SYSTEM_KINDS = frozenset({"gossip", "fair-gossip", "pushpull-gossip", "lazy-push"})


def build_stack(
    spec: StackSpec,
    scheduler,
    network,
    popularity: Optional[TopicPopularity] = None,
    live: bool = False,
    telemetry=None,
):
    """Build the dissemination system described by ``spec.system``.

    Works against either scheduling substrate (simulator or live runtime);
    ``live=True`` marks runtime builds (see :class:`BuildContext`), and
    ``telemetry`` hands the caller's shared store to node-level instruments.
    Unknown kinds raise :class:`~repro.registry.base.RegistryError` listing
    the registered systems.

    When ``spec.topology`` is enabled the returned system additionally
    carries a ``topology`` attribute (a
    :class:`~repro.topology.runtime.TopologyRuntime`): membership views are
    scoped to intra-domain peers, the geo latency/loss matrix is installed
    on the network as a per-link profile, and bridge relays federate topic
    events across domain boundaries.
    """
    context = BuildContext(
        spec=spec,
        scheduler=scheduler,
        network=network,
        node_ids=list(spec.node_ids()),
        popularity=popularity,
        live=live,
        telemetry=telemetry,
    )
    if spec.topology.enabled:
        kind = spec.system.kind
        if kind not in _TOPOLOGY_SYSTEM_KINDS:
            raise RegistryError(
                f"topology requires a gossip-family system, got system.kind {kind!r}"
                f"{suggest(kind, _TOPOLOGY_SYSTEM_KINDS)}; topology-capable "
                f"kinds: {', '.join(sorted(_TOPOLOGY_SYSTEM_KINDS))}"
            )
        try:
            context.domain_map = compile_domain_map(spec.topology, context.node_ids)
        except TopologyError as error:
            raise RegistryError(f"invalid topology: {error}")
    system = SYSTEMS.get(spec.system.kind).factory(context)
    if context.domain_map is not None:
        # The geo stream is named and dedicated, so installing a lossless
        # profile draws nothing and perturbs no other stream.
        geo = GeoLinkProfile(
            context.domain_map, rng=scheduler.rng.stream("topology-geo")
        )
        network.set_link_profile(geo)
        router = BridgeRouter(
            network, context.domain_map, system.nodes, telemetry=telemetry
        )
        system.topology = TopologyRuntime(context.domain_map, router, geo)
    return system
