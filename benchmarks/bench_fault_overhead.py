"""Fault-layer overhead: an active-but-idle FaultController is near-free.

The fault layer's determinism contract says an *empty* plan schedules
nothing and draws nothing (fault-free runs are byte-identical to the
pre-fault code, which the pinned result hashes already enforce).  This
benchmark pins the next property: a controller that is *running* but whose
entries do nothing observable — a churn entry with both probabilities at
zero, ticking every round over the whole population and drawing only from
its own isolated RNG stream — adds less than 5% wall-clock overhead to the
smoke scenario, and leaves the measured physics bit-identical.

Methodology: baseline and idle-fault runs alternate (A/B/A/B…) so clock
drift and cache warmth bias neither side, and the comparison uses the
*median* of the per-run timings.  Writes ``BENCH_fault_overhead.json``
(override with ``REPRO_BENCH_FAULT_JSON``).

Environment knobs:

* ``REPRO_BENCH_FAULT_REPEATS``      — paired runs (default 7).
* ``REPRO_BENCH_FAULT_MAX_OVERHEAD`` — acceptance ceiling (default 0.05).
* ``REPRO_BENCH_FAULT_JSON``         — artifact path.
"""

from __future__ import annotations

import json
import os
import statistics
import time

from repro.experiments import get_scenario, run_experiment

ARTIFACT = os.environ.get("REPRO_BENCH_FAULT_JSON", "BENCH_fault_overhead.json")
REPEATS = int(os.environ.get("REPRO_BENCH_FAULT_REPEATS", "7"))
MAX_OVERHEAD = float(os.environ.get("REPRO_BENCH_FAULT_MAX_OVERHEAD", "0.05"))

#: A plan that keeps the controller busy every round without changing
#: anything: zero-probability churn walks the registry and draws from its
#: own isolated RNG stream each tick (the exact legacy ChurnInjector draw
#: sequence), so nothing observable changes — the honest worst case for
#: "idle".
IDLE_PLAN_ENTRIES = (
    (("kind", "churn"), ("down_probability", 0.0), ("up_probability", 0.0)),
)


def _configs():
    base = get_scenario("smoke").config
    idle = base.with_overrides(fault_plan=IDLE_PLAN_ENTRIES)
    return base, idle


def _strip_config(result) -> dict:
    payload = result.to_dict()
    payload.pop("config")
    return payload


def measure() -> dict:
    base_config, idle_config = _configs()
    # Warm-up (imports, registry population, allocator) outside the timings.
    baseline_result = run_experiment(base_config)
    idle_result = run_experiment(idle_config)
    assert _strip_config(idle_result) == _strip_config(baseline_result), (
        "an idle FaultController must not perturb the physics"
    )

    base_times, idle_times = [], []
    for _ in range(REPEATS):
        start = time.perf_counter()
        run_experiment(base_config)
        base_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        run_experiment(idle_config)
        idle_times.append(time.perf_counter() - start)

    base_median = statistics.median(base_times)
    idle_median = statistics.median(idle_times)
    overhead = (idle_median - base_median) / base_median
    return {
        "schema": "bench-fault-overhead/v1",
        "scenario": "smoke",
        "repeats": REPEATS,
        "baseline_median_seconds": base_median,
        "idle_fault_median_seconds": idle_median,
        "overhead_fraction": overhead,
        "max_overhead_fraction": MAX_OVERHEAD,
        "physics_identical": True,
    }


def test_fault_controller_idle_overhead(benchmark):
    row = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = [row]
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(row, handle, sort_keys=True, indent=2)
        handle.write("\n")
    print()
    print(
        f"fault overhead: baseline {row['baseline_median_seconds']*1e3:.1f}ms, "
        f"idle-fault {row['idle_fault_median_seconds']*1e3:.1f}ms, "
        f"overhead {row['overhead_fraction']*100:+.2f}% "
        f"(ceiling {MAX_OVERHEAD*100:.0f}%)"
    )
    assert row["overhead_fraction"] < MAX_OVERHEAD
