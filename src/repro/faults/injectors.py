"""Imperative failure injectors (the pre-FaultPlan API, kept first-class).

These are the hand-wired counterparts of the declarative
:class:`~repro.faults.plan.FaultPlan`: tests and examples that want to say
"kill *this* node at *this* time" without building a plan keep using them.
They share the skip-is-loud discipline of the
:class:`~repro.faults.controller.FaultController`: an event aimed at a node
that no longer exists records a ``fault.skipped`` trace/telemetry event
instead of vanishing.

``repro.sim.failure`` re-exports everything here, so historical import
paths keep working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..sim.engine import Simulator
from ..sim.network import Network
from ..sim.node import ProcessRegistry
from ..sim.trace import TraceRecorder
from .actions import (
    FAULT_EVENTS_METRIC,
    FAULT_SKIPPED_METRIC,
    apply_node_action,
    churn_tick,
)

__all__ = ["CrashEvent", "CrashSchedule", "ChurnInjector", "PartitionInjector"]


@dataclass(frozen=True)
class CrashEvent:
    """A single scheduled crash or recovery."""

    time: float
    node_id: str
    action: str  # "crash" | "recover" | "leave"


class CrashSchedule:
    """Deterministic list of crash / recover / leave events.

    Useful in tests and in experiments that need a precise failure pattern
    (for example "kill the rendezvous node of the most popular topic at
    t=20").
    """

    _ACTIONS = {"crash", "recover", "leave"}

    def __init__(
        self,
        simulator: Simulator,
        registry: ProcessRegistry,
        trace: Optional[TraceRecorder] = None,
        telemetry=None,
    ) -> None:
        self._simulator = simulator
        self._registry = registry
        self._trace = trace
        self._telemetry = telemetry
        self.events: List[CrashEvent] = []
        self.skipped = 0

    def add(self, time: float, node_id: str, action: str = "crash") -> CrashEvent:
        """Schedule one event; ``action`` is ``crash``, ``recover`` or ``leave``."""
        if action not in self._ACTIONS:
            raise ValueError(f"unknown action {action!r}")
        event = CrashEvent(time=time, node_id=node_id, action=action)
        self.events.append(event)
        self._simulator.schedule_at(time, lambda: self._apply(event), label=f"{action}:{node_id}")
        return event

    def _apply(self, event: CrashEvent) -> None:
        if not apply_node_action(self._registry, event.node_id, event.action):
            # The target left (or never existed): dropping the event quietly
            # would mislabel the run as having executed its failure pattern,
            # so the skip is recorded where analysis code will see it.
            self.skipped += 1
            if self._telemetry is not None:
                self._telemetry.increment(FAULT_SKIPPED_METRIC, action=event.action)
            if self._trace is not None:
                self._trace.record(
                    self._simulator.now,
                    "fault",
                    node=event.node_id,
                    action="skipped",
                    requested=event.action,
                )
            return
        if self._telemetry is not None:
            self._telemetry.increment(FAULT_EVENTS_METRIC, action=event.action)
        if self._trace is not None:
            self._trace.record(
                self._simulator.now, "churn", node=event.node_id, action=event.action
            )


class ChurnInjector:
    """Continuous random churn.

    Every ``period`` time units, each alive node crashes with probability
    ``down_probability`` and each crashed node recovers with probability
    ``up_probability``.  Nodes listed in ``protected`` never churn, which is
    how experiments keep publishers or measurement anchors alive.
    """

    def __init__(
        self,
        simulator: Simulator,
        registry: ProcessRegistry,
        period: float = 1.0,
        down_probability: float = 0.05,
        up_probability: float = 0.5,
        protected: Optional[Iterable[str]] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if not 0.0 <= down_probability <= 1.0 or not 0.0 <= up_probability <= 1.0:
            raise ValueError("probabilities must be within [0, 1]")
        self._simulator = simulator
        self._registry = registry
        self.period = period
        self.down_probability = down_probability
        self.up_probability = up_probability
        self.protected = set(protected or ())
        self._trace = trace
        self._timer = None
        self.crashes = 0
        self.recoveries = 0

    def start(self) -> None:
        """Begin injecting churn each period."""
        if self._timer is None:
            self._timer = self._simulator.schedule_periodic(
                self.period, self._tick, label="churn-injector"
            )

    def stop(self) -> None:
        """Stop injecting churn (already-crashed nodes stay down)."""
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    def _tick(self) -> None:
        churn_tick(
            self._registry,
            self._simulator.rng.stream("churn"),
            self.down_probability,
            self.up_probability,
            self.protected,
            on_crash=lambda node_id: self._record(node_id, "crash"),
            on_recover=lambda node_id: self._record(node_id, "recover"),
        )

    def _record(self, node_id: str, action: str) -> None:
        if action == "crash":
            self.crashes += 1
        else:
            self.recoveries += 1
        if self._trace is not None:
            self._trace.record(self._simulator.now, "churn", node=node_id, action=action)


class PartitionInjector:
    """Installs and heals network partitions at scheduled times."""

    def __init__(self, simulator: Simulator, network: Network) -> None:
        self._simulator = simulator
        self._network = network
        self.partitions_installed = 0

    def partition_at(self, time: float, assignment: Dict[str, int], heal_after: float) -> None:
        """Split the network at ``time`` and heal it ``heal_after`` units later."""
        if heal_after <= 0:
            raise ValueError("heal_after must be positive")

        def install() -> None:
            self._network.set_partition(assignment)
            self.partitions_installed += 1

        self._simulator.schedule_at(time, install, label="partition:install")
        self._simulator.schedule_at(
            time + heal_after, self._network.clear_partition, label="partition:heal"
        )

    def split_in_two(self, node_ids: List[str], time: float, heal_after: float, fraction: float = 0.5) -> None:
        """Convenience: put the first ``fraction`` of ``node_ids`` in group 1."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be strictly between 0 and 1")
        cutoff = max(1, int(len(node_ids) * fraction))
        assignment = {node_id: (1 if index < cutoff else 0) for index, node_id in enumerate(node_ids)}
        self.partition_at(time, assignment, heal_after)
