"""The paper's contribution: fairness model, accounting, and the fair gossip protocol.

* accounting — the work/benefit ledger behind Figures 1–3;
* fairness — the metrics that quantify "the ratio contribution/benefit of
  each peer must be equivalent" (Figure 1);
* policy — topic-based (Figure 2) vs expressive (Figure 3) interpretations;
* estimators / adaptive_fanout / adaptive_payload — the decentralised
  mechanisms that let a node choose its contribution level from its benefit;
* fair_gossip — the adaptive protocol built on the Figure 4 baseline;
* bias — selfishness models and the receiver-side auditing defence.
"""

from .accounting import (
    AccountSnapshot,
    BenefitWeights,
    ContributionWeights,
    NodeAccount,
    WorkLedger,
)
from .adaptive_fanout import AdaptiveFanoutController, FanoutSchedule
from .adaptive_payload import AdaptivePayloadController, PayloadSchedule
from .bias import BiasDetector, BiasFinding, BiasReport, ForwardAudit, SelfishGossipNode
from .estimators import BenefitEstimator, Ewma
from .fair_gossip import FairGossipNode, FairGossipSystem, fair_node_kwargs
from .fairness import (
    FairnessReport,
    contribution_benefit_ratios,
    coefficient_of_variation,
    evaluate_fairness,
    gini_coefficient,
    jain_index,
    max_min_spread,
    normalised_ratio_deviation,
    smoothed_ratios,
    wasted_contribution_share,
)
from .policy import EXPRESSIVE_POLICY, TOPIC_BASED_POLICY, FairnessPolicy

__all__ = [
    "WorkLedger",
    "NodeAccount",
    "AccountSnapshot",
    "ContributionWeights",
    "BenefitWeights",
    "FairnessReport",
    "contribution_benefit_ratios",
    "jain_index",
    "gini_coefficient",
    "coefficient_of_variation",
    "max_min_spread",
    "normalised_ratio_deviation",
    "smoothed_ratios",
    "wasted_contribution_share",
    "evaluate_fairness",
    "FairnessPolicy",
    "TOPIC_BASED_POLICY",
    "EXPRESSIVE_POLICY",
    "BenefitEstimator",
    "Ewma",
    "AdaptiveFanoutController",
    "FanoutSchedule",
    "AdaptivePayloadController",
    "PayloadSchedule",
    "FairGossipNode",
    "FairGossipSystem",
    "fair_node_kwargs",
    "ForwardAudit",
    "BiasDetector",
    "BiasReport",
    "BiasFinding",
    "SelfishGossipNode",
]
