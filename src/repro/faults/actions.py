"""The primitive fault actions, shared by every injector.

Both the declarative :class:`~repro.faults.controller.FaultController` and
the imperative injectors (:mod:`repro.faults.injectors`) apply faults
through these two helpers, so the behaviours — in particular the churn
draw sequence, which pinned historical traces depend on byte for byte —
exist in exactly one place.
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = [
    "FAULT_EVENTS_METRIC",
    "FAULT_SKIPPED_METRIC",
    "apply_node_action",
    "churn_tick",
]

#: Telemetry counter names every fault injector emits (tagged by
#: ``action``).  The report's fault timeline reads exactly these, so both
#: the declarative controller and the imperative injectors share the
#: constants rather than re-spelling the schema.
FAULT_EVENTS_METRIC = "fault.events"
FAULT_SKIPPED_METRIC = "fault.skipped"


def apply_node_action(registry, node_id: str, action: str) -> bool:
    """Apply one ``crash``/``recover``/``leave`` to a registered process.

    Returns ``False`` — without touching anything — when the node is not
    (or no longer) in the registry; callers turn that into a loud
    ``fault.skipped`` record rather than a silent no-op.
    """
    if registry is None or node_id not in registry:
        return False
    process = registry.get(node_id)
    if action == "crash":
        process.crash()
    elif action == "recover":
        process.recover()
    else:
        process.leave()
        registry.remove(node_id)
    return True


def churn_tick(
    registry,
    rng,
    down_probability: float,
    up_probability: float,
    protected,
    on_crash: Optional[Callable[[str], None]] = None,
    on_recover: Optional[Callable[[str], None]] = None,
) -> None:
    """One churn round: crash alive nodes, recover crashed ones.

    Exactly one ``rng.random()`` draw per unprotected process, every tick,
    regardless of the probabilities — the draw sequence is part of the
    determinism contract (pinned traces reproduce only if the sequence
    never changes), so do not guard the draws.
    """
    for process in registry.all():
        if process.node_id in protected:
            continue
        if process.alive:
            if rng.random() < down_probability:
                process.crash()
                if on_crash is not None:
                    on_crash(process.node_id)
        else:
            if rng.random() < up_probability:
                process.recover()
                if on_recover is not None:
                    on_recover(process.node_id)
