"""Tests for the work/benefit ledger and the fairness metrics (Figures 1-3)."""

from __future__ import annotations

import pytest

from repro.core import (
    BenefitWeights,
    ContributionWeights,
    NodeAccount,
    WorkLedger,
    coefficient_of_variation,
    contribution_benefit_ratios,
    evaluate_fairness,
    gini_coefficient,
    jain_index,
    max_min_spread,
    normalised_ratio_deviation,
    smoothed_ratios,
    wasted_contribution_share,
)


class TestWorkLedger:
    def test_recording_accumulates_counters(self):
        ledger = WorkLedger()
        ledger.record_publish("a")
        ledger.record_gossip_send("a", messages=3, events=12, size=24)
        ledger.record_infrastructure("a", messages=2)
        ledger.record_subscription_forward("a")
        ledger.record_delivery("a", events=4)
        account = ledger.account("a")
        assert account.events_published == 1
        assert account.gossip_messages_sent == 3
        assert account.events_forwarded == 12
        assert account.bytes_forwarded == 24
        assert account.infrastructure_messages == 2
        assert account.subscription_forwards == 1
        assert account.events_delivered == 4

    def test_subscribe_unsubscribe_track_filter_level(self):
        ledger = WorkLedger()
        ledger.record_subscribe("a")
        ledger.record_subscribe("a")
        ledger.record_unsubscribe("a")
        account = ledger.account("a")
        assert account.filters_placed == 1
        assert account.subscribe_operations == 2
        assert account.unsubscribe_operations == 1
        ledger.record_unsubscribe("a")
        ledger.record_unsubscribe("a")
        assert ledger.account("a").filters_placed == 0  # never negative

    def test_unknown_node_returns_empty_account(self):
        ledger = WorkLedger()
        account = ledger.account("ghost")
        assert account.events_published == 0
        assert "ghost" not in ledger.node_ids()
        ledger.ensure_node("ghost")
        assert "ghost" in ledger.node_ids()

    def test_snapshot_and_window_difference(self):
        ledger = WorkLedger()
        ledger.record_delivery("a", events=2)
        snapshot = ledger.snapshot(taken_at=1.0)
        ledger.record_delivery("a", events=3)
        ledger.record_gossip_send("b", messages=1)
        window = ledger.window(snapshot)
        assert window["a"].events_delivered == 3
        assert window["b"].gossip_messages_sent == 1
        # The snapshot itself is unaffected by later recording.
        assert snapshot.account("a").events_delivered == 2

    def test_totals(self):
        ledger = WorkLedger()
        ledger.record_publish("a")
        ledger.record_publish("b")
        ledger.record_delivery("b")
        totals = ledger.totals()
        assert totals.events_published == 2
        assert totals.events_delivered == 1

    def test_reset(self):
        ledger = WorkLedger()
        ledger.record_publish("a")
        ledger.reset()
        assert ledger.node_ids() == []

    def test_account_minus_requires_same_node(self):
        first = NodeAccount(node_id="a", events_published=5)
        second = NodeAccount(node_id="b")
        with pytest.raises(ValueError):
            first.minus(second)

    def test_record_crash(self):
        ledger = WorkLedger()
        ledger.record_crash("a")
        assert ledger.account("a").crashes == 1


class TestWeights:
    def test_contribution_weights_default_count_messages(self):
        account = NodeAccount(
            node_id="a",
            events_published=2,
            gossip_messages_sent=5,
            infrastructure_messages=3,
            subscription_forwards=1,
            events_forwarded=40,
            bytes_forwarded=100,
        )
        weights = ContributionWeights()
        assert weights.contribution(account) == 2 + 5 + 3 + 1

    def test_payload_weighted_contribution(self):
        account = NodeAccount(node_id="a", gossip_messages_sent=2, events_forwarded=10)
        weights = ContributionWeights(per_gossip_message=1.0, per_event_forwarded=0.5)
        assert weights.contribution(account) == 2 + 5.0

    def test_benefit_weights_figure2_vs_figure3(self):
        account = NodeAccount(node_id="a", events_delivered=6, filters_placed=3)
        expressive = BenefitWeights(per_delivery=1.0, per_filter=0.0)
        topic_based = BenefitWeights(per_delivery=1.0, per_filter=1.0)
        assert expressive.benefit(account) == 6
        assert topic_based.benefit(account) == 9

    def test_ledger_level_aggregation(self):
        ledger = WorkLedger()
        ledger.record_gossip_send("a", messages=4)
        ledger.record_delivery("b", events=2)
        contributions = ledger.contributions(ContributionWeights())
        benefits = ledger.benefits(BenefitWeights())
        assert contributions["a"] == 4
        assert benefits["b"] == 2


class TestFairnessIndices:
    def test_jain_index_bounds(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)
        assert jain_index([]) == 1.0
        assert jain_index([0, 0]) == 1.0

    def test_gini_bounds(self):
        assert gini_coefficient([3, 3, 3]) == pytest.approx(0.0, abs=1e-9)
        assert gini_coefficient([0, 0, 0, 12]) > 0.7
        assert gini_coefficient([]) == 0.0

    def test_coefficient_of_variation(self):
        assert coefficient_of_variation([2, 2, 2]) == 0.0
        assert coefficient_of_variation([1, 3]) > 0.0
        assert coefficient_of_variation([]) == 0.0

    def test_max_min_spread(self):
        assert max_min_spread([2, 4, 8]) == 4.0
        assert max_min_spread([5]) == 1.0
        assert max_min_spread([0, 0]) == 1.0

    def test_ratios_cap_zero_benefit_contributors(self):
        ratios = contribution_benefit_ratios({"a": 10, "b": 10}, {"a": 5, "b": 0})
        assert ratios["a"] == 2.0
        assert ratios["b"] == pytest.approx(1e6)
        idle = contribution_benefit_ratios({"c": 0}, {"c": 0})
        assert idle["c"] == 0.0

    def test_smoothed_ratios_stay_finite_and_ordered(self):
        smoothed = smoothed_ratios({"a": 10, "b": 10}, {"a": 9, "b": 0}, smoothing=1.0)
        assert smoothed["a"] == 1.0
        assert smoothed["b"] == 10.0
        with pytest.raises(ValueError):
            smoothed_ratios({}, {}, smoothing=0.0)

    def test_wasted_contribution_share(self):
        share = wasted_contribution_share({"a": 30, "b": 70}, {"a": 0, "b": 5})
        assert share == pytest.approx(0.3)
        assert wasted_contribution_share({}, {}) == 0.0

    def test_normalised_ratio_deviation(self):
        assert normalised_ratio_deviation({"a": 2.0, "b": 2.0}) == 0.0
        assert normalised_ratio_deviation({"a": 1.0, "b": 3.0}) == pytest.approx(0.5)
        assert normalised_ratio_deviation({}) == 0.0


class TestEvaluateFairness:
    def test_perfectly_fair_system(self):
        contributions = {f"n{i}": 10.0 for i in range(8)}
        benefits = {f"n{i}": 5.0 for i in range(8)}
        report = evaluate_fairness(contributions, benefits)
        assert report.ratio_jain == pytest.approx(1.0)
        assert report.wasted_share == 0.0
        assert report.exploited == 0
        assert report.ratio_spread == pytest.approx(1.0)

    def test_scribe_like_unfairness_detected(self):
        # Two interior nodes do most of the work with zero benefit.
        contributions = {"relay1": 100.0, "relay2": 80.0}
        benefits = {"relay1": 0.0, "relay2": 0.0}
        for index in range(10):
            contributions[f"leaf{index}"] = 2.0
            benefits[f"leaf{index}"] = 10.0
        report = evaluate_fairness(contributions, benefits)
        assert report.wasted_share > 0.85
        assert report.ratio_jain < 0.5
        assert report.exploited >= 2

    def test_load_balanced_but_unfair(self):
        # Equal contributions, very different benefits: load balancing looks
        # perfect, fairness does not (the §3.1 vs §3.2 distinction).
        contributions = {f"n{i}": 10.0 for i in range(10)}
        benefits = {f"n{i}": (20.0 if i < 5 else 1.0) for i in range(10)}
        report = evaluate_fairness(contributions, benefits)
        assert report.contribution_jain == pytest.approx(1.0)
        assert report.ratio_jain < 0.75

    def test_summary_row_keys(self):
        report = evaluate_fairness({"a": 1.0}, {"a": 1.0})
        row = report.summary_row()
        for key in ("ratio_jain", "wasted_share", "contribution_jain", "mean_benefit"):
            assert key in row

    def test_freerider_detection(self):
        contributions = {"worker": 50.0, "freerider": 1.0}
        benefits = {"worker": 10.0, "freerider": 10.0}
        for index in range(8):
            contributions[f"n{index}"] = 20.0
            benefits[f"n{index}"] = 10.0
        report = evaluate_fairness(contributions, benefits)
        assert report.freeriders >= 1
