"""Tests for the fair gossip protocol and the bias/selfishness machinery."""

from __future__ import annotations

import pytest

from tests.conftest import build_gossip_system
from repro.core import (
    BiasDetector,
    EXPRESSIVE_POLICY,
    FairGossipNode,
    FairGossipSystem,
    ForwardAudit,
    SelfishGossipNode,
    evaluate_fairness,
)
from repro.gossip import GossipSystem
from repro.membership import full_membership_provider
from repro.pubsub import TopicFilter
from repro.sim import Network, Simulator


def skewed_workload(system, publishers=4, events=40, spacing=0.5):
    """Half the nodes subscribe, the other half have no interest."""
    ids = system.node_ids()
    for index, node_id in enumerate(ids):
        if index % 2 == 0:
            system.subscribe(node_id, TopicFilter("news"))
    for index in range(events):
        system.publish(ids[index % publishers], topic="news")
        system.simulator.run(until=system.simulator.now + spacing)
    system.run(until=system.simulator.now + 15.0)


class TestFairGossipProtocol:
    def test_reliability_preserved(self):
        system = build_gossip_system(nodes=30, seed=31, fair=True)
        skewed_workload(system)
        interested = len([n for i, n in enumerate(system.node_ids()) if i % 2 == 0])
        assert system.delivery_log.total_deliveries() == interested * 40

    def test_fairness_better_than_classic(self):
        fair = build_gossip_system(nodes=30, seed=32, fair=True)
        skewed_workload(fair)
        classic = build_gossip_system(nodes=30, seed=32, fair=False)
        skewed_workload(classic)

        def report(system):
            return evaluate_fairness(
                EXPRESSIVE_POLICY.contributions(system.ledger),
                EXPRESSIVE_POLICY.benefits(system.ledger),
            )

        fair_report = report(fair)
        classic_report = report(classic)
        assert fair_report.wasted_share < classic_report.wasted_share
        assert fair_report.ratio_jain > classic_report.ratio_jain

    def test_subscribers_send_more_than_non_subscribers(self):
        system = build_gossip_system(nodes=30, seed=33, fair=True)
        skewed_workload(system)
        subscriber_work = [
            system.ledger.account(node_id).gossip_messages_sent
            for index, node_id in enumerate(system.node_ids())
            if index % 2 == 0
        ]
        idle_work = [
            system.ledger.account(node_id).gossip_messages_sent
            for index, node_id in enumerate(system.node_ids())
            if index % 2 == 1
        ]
        assert sum(subscriber_work) / len(subscriber_work) > 1.5 * (
            sum(idle_work) / len(idle_work)
        )

    def test_controllers_adapt_fanout_per_node(self):
        system = build_gossip_system(nodes=20, seed=34, fair=True)
        skewed_workload(system, events=30)

        # Once traffic stops, everyone falls back towards the floor, so the
        # adaptation is visible in the controllers' history (the fanout used
        # while events were flowing), not in the final value.
        def mean_history(node_id):
            history = system.node(node_id).fanout_controller.history
            return sum(history) / len(history)

        subscriber_mean = [
            mean_history(node_id)
            for index, node_id in enumerate(system.node_ids())
            if index % 2 == 0
        ]
        idle_mean = [
            mean_history(node_id)
            for index, node_id in enumerate(system.node_ids())
            if index % 2 == 1
        ]
        assert sum(subscriber_mean) / len(subscriber_mean) > sum(idle_mean) / len(idle_mean)
        idle_current = [
            system.node(node_id).current_fanout()
            for index, node_id in enumerate(system.node_ids())
            if index % 2 == 1
        ]
        assert min(idle_current) >= 1  # the connectivity floor

    def test_ablation_switches_freeze_levers(self):
        system = build_gossip_system(nodes=10, seed=35)
        simulator = Simulator(seed=35)
        network = Network(simulator)
        frozen = FairGossipSystem(
            simulator,
            network,
            [f"node-{index}" for index in range(10)],
            node_kwargs={
                "fanout": 3,
                "gossip_size": 8,
                "adapt_fanout": False,
                "adapt_payload": False,
            },
        )
        for node_id in frozen.node_ids():
            frozen.subscribe(node_id, TopicFilter("news"))
        frozen.publish("node-0", topic="news")
        frozen.run(until=10.0)
        node = frozen.node("node-0")
        assert node.current_fanout() == 3
        assert node.current_gossip_size() == 8
        assert node.estimator.own_observations > 0  # estimator still warm

    def test_benefit_rate_piggybacked(self):
        system = build_gossip_system(nodes=15, seed=36, fair=True)
        skewed_workload(system, events=20)
        rates = [system.node(node_id).estimator.peer_observations for node_id in system.node_ids()]
        assert sum(rates) > 0


class TestForwardAuditAndDetector:
    def test_useful_ratio_computation(self):
        audit = ForwardAudit()
        audit.observe("s", new_events=4, total_events=4)
        audit.observe("s", new_events=0, total_events=4)
        assert audit.useful_ratio("s") == pytest.approx(0.5)
        assert audit.useful_ratio("unknown") == 1.0
        assert audit.message_count("s") == 2

    def test_zero_total_ignored(self):
        audit = ForwardAudit()
        audit.observe("s", new_events=0, total_events=0)
        assert audit.senders() == []

    def test_recipient_concentration(self):
        audit = ForwardAudit()
        for _ in range(20):
            audit.observe("biased", 1, 1, receiver="friend")
        audit.observe("biased", 1, 1, receiver="other")
        spread = ForwardAudit()
        for index in range(21):
            spread.observe("fairer", 1, 1, receiver=f"r{index}")
        assert audit.recipient_concentration("biased") > spread.recipient_concentration("fairer")
        assert ForwardAudit().recipient_concentration("nobody") == 0.0

    def test_detector_flags_stale_forwarder(self):
        audit = ForwardAudit()
        for sender in ("honest-1", "honest-2", "honest-3"):
            for _ in range(20):
                audit.observe(sender, 3, 4)
        for _ in range(20):
            audit.observe("lazy", 0, 4)
        report = BiasDetector(min_messages=10).analyse(audit)
        assert "lazy" in report.flagged_nodes()
        assert "honest-1" not in report.flagged_nodes()
        assert "stale-event bias" in report.findings["lazy"].reasons

    def test_detector_requires_enough_evidence(self):
        audit = ForwardAudit()
        audit.observe("new", 0, 4)
        report = BiasDetector(min_messages=10).analyse(audit)
        assert report.flagged_nodes() == []

    def test_precision_recall(self):
        audit = ForwardAudit()
        for _ in range(20):
            audit.observe("bad", 0, 4)
            audit.observe("good", 4, 4)
        report = BiasDetector(min_messages=5).analyse(audit)
        precision, recall = report.precision_recall(["bad"])
        assert precision == 1.0 and recall == 1.0
        precision_none, recall_none = report.precision_recall([])
        assert recall_none == 1.0

    def test_detector_parameter_validation(self):
        with pytest.raises(ValueError):
            BiasDetector(useful_ratio_threshold=0.0)
        with pytest.raises(ValueError):
            BiasDetector(concentration_threshold=2.0)

    def test_precision_recall_no_selfish_nodes(self):
        # Honest population, empty ground truth: nothing flagged is a
        # perfect detector (vacuous precision), and recall is vacuously 1.
        audit = ForwardAudit()
        for _ in range(20):
            audit.observe("a", 4, 4)
            audit.observe("b", 4, 4)
        report = BiasDetector(min_messages=5).analyse(audit)
        assert report.flagged_nodes() == []
        precision, recall = report.precision_recall([])
        assert precision == 1.0 and recall == 1.0

    def test_precision_recall_false_positive_with_no_selfish_nodes(self):
        # One node looks stale-biased but the ground truth is empty: every
        # flag is a false positive (precision 0), recall stays vacuously 1.
        audit = ForwardAudit()
        for _ in range(20):
            audit.observe("honest-looking-bad", 0, 4)
            audit.observe("good-1", 4, 4)
            audit.observe("good-2", 4, 4)
        report = BiasDetector(min_messages=5).analyse(audit)
        assert report.flagged_nodes() == ["honest-looking-bad"]
        precision, recall = report.precision_recall([])
        assert precision == 0.0 and recall == 1.0

    def test_precision_recall_all_selfish_all_flagged(self):
        # Uniformly selfish population: the median-relative rule cannot
        # separate anyone (everyone IS the median), so nothing is flagged.
        # With a non-empty ground truth and an empty flag set, both
        # precision and recall collapse to 0 — the detector is blind to a
        # population-wide attack by construction.
        audit = ForwardAudit()
        for _ in range(20):
            audit.observe("bad-1", 0, 4)
            audit.observe("bad-2", 0, 4)
        report = BiasDetector(min_messages=5).analyse(audit)
        assert report.flagged_nodes() == []
        precision, recall = report.precision_recall(["bad-1", "bad-2"])
        assert precision == 0.0 and recall == 0.0

    def test_precision_recall_all_selfish_partially_caught(self):
        # Mostly honest population with two true attackers, one flagged:
        # precision 1 (no false positives), recall 1/2.
        audit = ForwardAudit()
        for _ in range(20):
            audit.observe("bad-caught", 0, 4)
            audit.observe("bad-missed", 4, 4)  # behaves well enough to hide
            audit.observe("good-1", 4, 4)
            audit.observe("good-2", 4, 4)
        report = BiasDetector(min_messages=5).analyse(audit)
        assert report.flagged_nodes() == ["bad-caught"]
        precision, recall = report.precision_recall(["bad-caught", "bad-missed"])
        assert precision == 1.0 and recall == 0.5


class TestSelfishNode:
    def build_mixed_system(self, seed=40, nodes=30, selfish=4):
        simulator = Simulator(seed=seed)
        network = Network(simulator)
        ids = [f"node-{index}" for index in range(nodes)]
        system = GossipSystem(
            simulator,
            network,
            ids,
            node_kwargs={"fanout": 3, "gossip_size": 6, "round_period": 1.0},
        )
        audit = ForwardAudit()
        # Replace the first `selfish` nodes by attacker processes that report
        # into the same ledger/delivery log; colluders are the other attackers.
        selfish_ids = ids[:selfish]
        for node_id in selfish_ids:
            old = system.nodes[node_id]
            old.leave()
            system.registry.remove(node_id)
            attacker = SelfishGossipNode(
                node_id,
                simulator,
                network,
                membership_provider=full_membership_provider(network),
                ledger=system.ledger,
                delivery_log=system.delivery_log,
                fanout=3,
                gossip_size=6,
                colluders=[other for other in selfish_ids if other != node_id],
            )
            attacker.start()
            system.nodes[node_id] = attacker
            system.registry.add(attacker)
        for node_id, node in system.nodes.items():
            node.forward_audit = audit
        return system, audit, selfish_ids

    def test_selfish_nodes_keep_contribution_but_are_useless(self):
        system, audit, selfish_ids = self.build_mixed_system()
        for node_id in system.node_ids():
            system.subscribe(node_id, TopicFilter("news"))
        for index in range(30):
            system.publish(f"node-{10 + index % 10}", topic="news")
            system.simulator.run(until=system.simulator.now + 0.5)
        system.run(until=system.simulator.now + 10)
        honest_ids = [node_id for node_id in system.node_ids() if node_id not in selfish_ids]
        selfish_ratio = sum(audit.useful_ratio(node_id) for node_id in selfish_ids) / len(selfish_ids)
        honest_ratio = sum(audit.useful_ratio(node_id) for node_id in honest_ids) / len(honest_ids)
        assert selfish_ratio < honest_ratio

    def test_detector_catches_most_selfish_nodes(self):
        system, audit, selfish_ids = self.build_mixed_system(seed=41)
        for node_id in system.node_ids():
            system.subscribe(node_id, TopicFilter("news"))
        for index in range(40):
            system.publish(f"node-{10 + index % 10}", topic="news")
            system.simulator.run(until=system.simulator.now + 0.5)
        system.run(until=system.simulator.now + 10)
        report = BiasDetector(min_messages=5).analyse(audit)
        precision, recall = report.precision_recall(selfish_ids)
        assert recall >= 0.5
        assert precision >= 0.5

    def test_collusion_bias_validation(self, simulator, network, ledger, delivery_log):
        with pytest.raises(ValueError):
            SelfishGossipNode(
                "x",
                simulator,
                network,
                membership_provider=full_membership_provider(network),
                ledger=ledger,
                delivery_log=delivery_log,
                colluders=["y"],
                collusion_bias=2.0,
            )
