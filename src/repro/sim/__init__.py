"""Discrete-event simulation substrate.

This package is the testbed substitute: a deterministic, seeded
discrete-event simulator with a virtual clock, a message-passing network
model (latency, loss, partitions), a process abstraction with periodic
timers, failure/churn injection, trace recording, and metric collection.

Typical wiring::

    from repro.sim import Simulator, Network, ProcessRegistry

    sim = Simulator(seed=42)
    net = Network(sim)
    registry = ProcessRegistry()
    # ... create Process subclasses, start them, then:
    sim.run(until=100.0)
"""

from .clock import Clock, VirtualClock
from .engine import PeriodicTimer, ScheduledEvent, SimulationError, Simulator
from .failure import ChurnInjector, CrashSchedule, PartitionInjector
from .metrics import Counter, Gauge, Histogram, HistogramSummary, MetricsRegistry
from .network import (
    BernoulliLoss,
    ConstantLatency,
    LogNormalLatency,
    LossModel,
    LatencyModel,
    Message,
    Network,
    NetworkStats,
    NoLoss,
    UniformLatency,
)
from .node import Process, ProcessRegistry
from .rng import RngRegistry, derive_seed, weighted_choice, zipf_weights
from .trace import TraceRecord, TraceRecorder

__all__ = [
    "Clock",
    "VirtualClock",
    "Simulator",
    "ScheduledEvent",
    "PeriodicTimer",
    "SimulationError",
    "Message",
    "Network",
    "NetworkStats",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "Process",
    "ProcessRegistry",
    "ChurnInjector",
    "CrashSchedule",
    "PartitionInjector",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "MetricsRegistry",
    "RngRegistry",
    "derive_seed",
    "zipf_weights",
    "weighted_choice",
    "TraceRecord",
    "TraceRecorder",
]
