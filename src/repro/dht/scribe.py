"""Scribe-style rendezvous multicast trees (reference [8], §4.1).

Scribe builds one application-level multicast tree per topic: the topic is
hashed to a key, the key's root in the Pastry overlay is the *rendezvous
node*, and a node joins the tree by routing a JOIN towards the rendezvous —
every node on the route becomes a forwarder (an interior tree node) whether
or not it is interested in the topic.  Publishing routes the event to the
rendezvous and then floods it down the tree.

This is the paper's canonical example of an *unfair* structured system
(§4.1): interior nodes and rendezvous nodes contribute forwarding work for
topics they never subscribed to, and a node with many subscriptions works no
more than one with a single subscription.  The implementation therefore
charges every forwarded JOIN, publish-route hop, and multicast hop to the
forwarding node's ledger account so the fairness experiments can measure
exactly that effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.accounting import WorkLedger
from ..pubsub.events import Event, EventFactory
from ..pubsub.filters import Filter, TopicFilter
from ..pubsub.interfaces import DeliveryCallback, DeliveryLog, DisseminationSystem
from ..pubsub.subscriptions import SubscriptionTable
from ..sim.engine import Simulator
from ..sim.network import Message, Network
from ..sim.node import Process, ProcessRegistry
from .pastry import PastryRouter

__all__ = ["ScribeNode", "ScribeSystem"]

JOIN_KIND = "scribe.join"
LEAVE_KIND = "scribe.leave"
ROUTE_PUBLISH_KIND = "scribe.route-publish"
MULTICAST_KIND = "scribe.multicast"


@dataclass(frozen=True)
class _JoinPayload:
    routing_topic: str
    child: str


@dataclass(frozen=True)
class _LeavePayload:
    routing_topic: str
    child: str


@dataclass(frozen=True)
class _PublishPayload:
    routing_topic: str
    event: Event


def _encode_membership_change(payload) -> dict:
    return {"topic": payload.routing_topic, "child": payload.child}


def _decode_join(encoded: dict) -> "_JoinPayload":
    return _JoinPayload(routing_topic=str(encoded["topic"]), child=str(encoded["child"]))


def _decode_leave(encoded: dict) -> "_LeavePayload":
    return _LeavePayload(routing_topic=str(encoded["topic"]), child=str(encoded["child"]))


def _encode_publish(payload: "_PublishPayload") -> dict:
    return {"topic": payload.routing_topic, "event": payload.event.to_dict()}


def _decode_publish(encoded: dict) -> "_PublishPayload":
    return _PublishPayload(
        routing_topic=str(encoded["topic"]), event=Event.from_dict(encoded["event"])
    )


#: ``kind -> (encoder, decoder)`` consumed by the runtime wire codec
#: (:mod:`repro.runtime.wire`); SplitStream reuses these kinds unchanged.
WIRE_CODECS = {
    JOIN_KIND: (_encode_membership_change, _decode_join),
    LEAVE_KIND: (_encode_membership_change, _decode_leave),
    ROUTE_PUBLISH_KIND: (_encode_publish, _decode_publish),
    MULTICAST_KIND: (_encode_publish, _decode_publish),
}


class ScribeNode(Process):
    """One Pastry/Scribe participant.

    ``routing_topic`` is the name hashed to pick the rendezvous (it differs
    from the event's real topic only for SplitStream stripes); interest is
    always evaluated on the event's real topic.
    """

    def __init__(
        self,
        node_id: str,
        simulator: Simulator,
        network: Network,
        router: PastryRouter,
        ledger: WorkLedger,
        delivery_log: DeliveryLog,
    ) -> None:
        super().__init__(node_id, simulator, network)
        self.router = router
        self.ledger = ledger
        self.delivery_log = delivery_log
        self.subscribed_topics: Set[str] = set()
        self.children: Dict[str, Set[str]] = {}
        self.parent: Dict[str, Optional[str]] = {}
        self.forwarder_topics: Set[str] = set()
        self.delivered_event_ids: Set[str] = set()
        self._callbacks: List[DeliveryCallback] = []
        self.ledger.ensure_node(node_id)

    # ------------------------------------------------------------ user API

    def add_delivery_callback(self, callback: DeliveryCallback) -> None:
        """Register an application callback invoked on every delivery."""
        self._callbacks.append(callback)

    def subscribe_topic(self, topic: str, routing_topic: Optional[str] = None) -> None:
        """Subscribe to ``topic`` and join the multicast tree for it."""
        routing_topic = routing_topic or topic
        if topic not in self.subscribed_topics:
            self.subscribed_topics.add(topic)
            self.ledger.record_subscribe(self.node_id)
        self._join_tree(routing_topic)

    def unsubscribe_topic(self, topic: str, routing_topic: Optional[str] = None) -> None:
        """Drop the subscription; leave the tree if no children depend on us."""
        routing_topic = routing_topic or topic
        if topic in self.subscribed_topics:
            self.subscribed_topics.discard(topic)
            self.ledger.record_unsubscribe(self.node_id)
        self._maybe_leave(routing_topic)

    def publish(self, event: Event, routing_topic: Optional[str] = None) -> None:
        """Publish an event: route it to the rendezvous of its topic."""
        if not self.alive:
            return
        topic = routing_topic or (event.topic or "")
        self.ledger.record_publish(self.node_id)
        key = self.router.key_for(topic)
        next_hop = self.router.next_hop(self.node_id, key)
        payload = _PublishPayload(routing_topic=topic, event=event)
        if next_hop is None:
            # This node is the rendezvous: start the downward multicast.
            self._multicast(payload, received_from=None)
        else:
            self.send(next_hop, ROUTE_PUBLISH_KIND, payload=payload, size=event.size)
            self.ledger.record_gossip_send(self.node_id, messages=1, events=1, size=event.size)

    # ------------------------------------------------------------ tree join

    def _join_tree(self, routing_topic: str) -> None:
        if routing_topic in self.forwarder_topics:
            return
        self.forwarder_topics.add(routing_topic)
        self.children.setdefault(routing_topic, set())
        key = self.router.key_for(routing_topic)
        next_hop = self.router.next_hop(self.node_id, key)
        self.parent[routing_topic] = next_hop
        if next_hop is not None:
            self.send(
                next_hop,
                JOIN_KIND,
                payload=_JoinPayload(routing_topic=routing_topic, child=self.node_id),
            )
            self.ledger.record_subscription_forward(self.node_id)

    def _maybe_leave(self, routing_topic: str) -> None:
        """Leave the tree if this node neither subscribes nor forwards for others."""
        interested = any(
            topic == routing_topic or routing_topic.startswith(f"{topic}#")
            for topic in self.subscribed_topics
        )
        if interested or self.children.get(routing_topic):
            return
        if routing_topic not in self.forwarder_topics:
            return
        self.forwarder_topics.discard(routing_topic)
        parent = self.parent.pop(routing_topic, None)
        if parent is not None:
            self.send(
                parent,
                LEAVE_KIND,
                payload=_LeavePayload(routing_topic=routing_topic, child=self.node_id),
            )
            self.ledger.record_subscription_forward(self.node_id)

    # ------------------------------------------------------------- messages

    def on_message(self, message: Message) -> None:
        if message.kind == JOIN_KIND:
            self._handle_join(message.payload)
        elif message.kind == LEAVE_KIND:
            self._handle_leave(message.payload)
        elif message.kind == ROUTE_PUBLISH_KIND:
            self._handle_route_publish(message.payload)
        elif message.kind == MULTICAST_KIND:
            self._handle_multicast(message)

    def _handle_join(self, payload: _JoinPayload) -> None:
        topic = payload.routing_topic
        self.children.setdefault(topic, set()).add(payload.child)
        if topic in self.forwarder_topics:
            return
        # Become a forwarder (possibly without any interest of our own) and
        # keep joining towards the rendezvous — this is Scribe's unfairness.
        self.forwarder_topics.add(topic)
        key = self.router.key_for(topic)
        next_hop = self.router.next_hop(self.node_id, key)
        self.parent[topic] = next_hop
        if next_hop is not None:
            self.send(
                next_hop, JOIN_KIND, payload=_JoinPayload(routing_topic=topic, child=self.node_id)
            )
            self.ledger.record_subscription_forward(self.node_id)

    def _handle_leave(self, payload: _LeavePayload) -> None:
        topic = payload.routing_topic
        self.children.get(topic, set()).discard(payload.child)
        self._maybe_leave(topic)

    def _handle_route_publish(self, payload: _PublishPayload) -> None:
        key = self.router.key_for(payload.routing_topic)
        next_hop = self.router.next_hop(self.node_id, key)
        if next_hop is None:
            self._multicast(payload, received_from=None)
        else:
            self.send(next_hop, ROUTE_PUBLISH_KIND, payload=payload, size=payload.event.size)
            self.ledger.record_gossip_send(
                self.node_id, messages=1, events=1, size=payload.event.size
            )

    def _handle_multicast(self, message: Message) -> None:
        payload: _PublishPayload = message.payload
        self._multicast(payload, received_from=message.sender)

    def _multicast(self, payload: _PublishPayload, received_from: Optional[str]) -> None:
        """Deliver locally if interested and forward down the tree."""
        event = payload.event
        if event.topic in self.subscribed_topics:
            self._deliver(event)
        children = self.children.get(payload.routing_topic, set())
        targets = [child for child in sorted(children) if child != received_from]
        for child in targets:
            self.send(child, MULTICAST_KIND, payload=payload, size=event.size)
        if targets:
            self.ledger.record_gossip_send(
                self.node_id, messages=len(targets), events=len(targets), size=event.size * len(targets)
            )

    def _deliver(self, event: Event) -> None:
        if event.event_id in self.delivered_event_ids:
            return
        self.delivered_event_ids.add(event.event_id)
        self.ledger.record_delivery(self.node_id)
        self.delivery_log.record(self.node_id, event, delivered_at=self.simulator.now)
        for callback in self._callbacks:
            callback(self.node_id, event)

    # ----------------------------------------------------------- accounting

    def on_crash(self) -> None:
        self.ledger.record_crash(self.node_id)
        self.router.set_alive(self.node_id, False)

    def on_recover(self) -> None:
        self.router.set_alive(self.node_id, True)


class ScribeSystem(DisseminationSystem):
    """Topic-based dissemination over Scribe-style multicast trees."""

    name = "scribe"

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        node_ids: Sequence[str],
        ledger: Optional[WorkLedger] = None,
        delivery_log: Optional[DeliveryLog] = None,
    ) -> None:
        if not node_ids:
            raise ValueError("a Scribe system needs at least one node")
        self.simulator = simulator
        self.network = network
        self.ledger = ledger if ledger is not None else WorkLedger()
        self._delivery_log = delivery_log if delivery_log is not None else DeliveryLog()
        self.subscriptions = SubscriptionTable()
        self.router = PastryRouter(list(node_ids))
        self.registry = ProcessRegistry()
        self.nodes: Dict[str, ScribeNode] = {}
        self._factories: Dict[str, EventFactory] = {}
        for node_id in node_ids:
            node = ScribeNode(
                node_id, simulator, network, self.router, self.ledger, self._delivery_log
            )
            node.start()
            self.nodes[node_id] = node
            self.registry.add(node)
            self._factories[node_id] = EventFactory(node_id)

    # ------------------------------------------------------------- §2 API

    def publish(self, publisher_id: str, event: Optional[Event] = None, **attributes) -> Event:
        if event is None:
            factory = self._factories[publisher_id]
            topic = attributes.pop("topic", None)
            size = attributes.pop("size", 1)
            event = factory.create(attributes=attributes, topic=topic, size=size)
        if event.topic is None:
            raise ValueError("Scribe is topic-based: the event needs a topic")
        event = event.with_time(self.simulator.now)
        self.nodes[publisher_id].publish(event)
        return event

    def subscribe(
        self,
        node_id: str,
        subscription_filter: Filter,
        callbacks: Sequence[DeliveryCallback] = (),
    ) -> None:
        topic = self._topic_of(subscription_filter)
        node = self.nodes[node_id]
        node.subscribe_topic(topic)
        self.subscriptions.subscribe(node_id, subscription_filter, timestamp=self.simulator.now)
        for callback in callbacks:
            node.add_delivery_callback(callback)

    def unsubscribe(self, node_id: str, subscription_filter: Filter) -> None:
        topic = self._topic_of(subscription_filter)
        self.nodes[node_id].unsubscribe_topic(topic)
        self.subscriptions.unsubscribe(node_id, subscription_filter, timestamp=self.simulator.now)

    @staticmethod
    def _topic_of(subscription_filter: Filter) -> str:
        if not isinstance(subscription_filter, TopicFilter):
            raise TypeError(
                "Scribe (like the paper's description of it) supports topic-based "
                "subscriptions only; use a TopicFilter"
            )
        return subscription_filter.topic

    # -------------------------------------------------------------- queries

    @property
    def delivery_log(self) -> DeliveryLog:
        return self._delivery_log

    def node_ids(self) -> List[str]:
        return sorted(self.nodes)

    def node(self, node_id: str) -> ScribeNode:
        """Return the node object for ``node_id``."""
        return self.nodes[node_id]

    def run(self, until: float) -> None:
        """Advance the simulation to time ``until``."""
        self.simulator.run(until=until)

    def rendezvous_of(self, topic: str) -> str:
        """The rendezvous (tree root) node of a topic."""
        return self.router.root_of(self.router.key_for(topic))

    def pure_forwarders(self, topic: str) -> List[str]:
        """Nodes that forward for ``topic`` without being subscribed to it.

        These are the paper's exhibit A for structured unfairness.
        """
        return sorted(
            node_id
            for node_id, node in self.nodes.items()
            if topic in node.forwarder_topics and topic not in node.subscribed_topics
        )
