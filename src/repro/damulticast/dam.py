"""Data-aware multicast baseline (reference [3], §4.2).

Data-aware multicast (dam) organises topics into a hierarchy and maintains
one gossip group per topic containing only that topic's subscribers, so
dissemination work is only performed by interested processes — the paper
credits it with "fairness with respect to the dissemination".  The catch the
paper points out is the *grouping maintenance*: bridging between levels of
the hierarchy requires some processes to join a **supertopic** group, which
forces them to handle traffic for all descendant topics "similar to a broker
in a client/server architecture".

Implementation:

* a :class:`~repro.pubsub.topics.TopicHierarchy` defines the topic tree;
* each topic has a gossip group of its subscribers;
* each *root* topic additionally has a small set of **delegates** — members
  recruited from the subtree's subscribers (or arbitrary nodes if the
  subtree has none) — that join every group in the subtree so a publisher
  that is not itself subscribed can hand its event to a delegate;
* dissemination inside a group is an infect-and-die epidemic: on first
  receipt of an event, a member forwards it to ``fanout`` random other group
  members, which keeps per-member work bounded and interest-local.

The fairness experiments then show exactly the paper's observation: ordinary
members have a clean contribution/benefit ratio, delegates look like small
brokers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..core.accounting import WorkLedger
from ..pubsub.events import Event, EventFactory
from ..pubsub.filters import Filter, TopicFilter
from ..pubsub.interfaces import DeliveryCallback, DeliveryLog, DisseminationSystem
from ..pubsub.subscriptions import SubscriptionTable
from ..pubsub.topics import TopicHierarchy, topic_path
from ..sim.engine import Simulator
from ..sim.network import Message, Network
from ..sim.node import Process, ProcessRegistry

__all__ = ["DamNode", "DataAwareMulticastSystem"]

GROUP_GOSSIP_KIND = "dam.gossip"
HANDOFF_KIND = "dam.handoff"


@dataclass(frozen=True)
class _GossipPayload:
    topic: str
    event: Event


def _encode_gossip_payload(payload: "_GossipPayload") -> dict:
    return {"topic": payload.topic, "event": payload.event.to_dict()}


def _decode_gossip_payload(encoded: dict) -> "_GossipPayload":
    return _GossipPayload(topic=str(encoded["topic"]), event=Event.from_dict(encoded["event"]))


#: ``kind -> (encoder, decoder)`` consumed by the runtime wire codec
#: (:mod:`repro.runtime.wire`).
WIRE_CODECS = {
    GROUP_GOSSIP_KIND: (_encode_gossip_payload, _decode_gossip_payload),
    HANDOFF_KIND: (_encode_gossip_payload, _decode_gossip_payload),
}


class DamNode(Process):
    """A data-aware multicast participant."""

    def __init__(
        self,
        node_id: str,
        simulator: Simulator,
        network: Network,
        system: "DataAwareMulticastSystem",
        ledger: WorkLedger,
        delivery_log: DeliveryLog,
        fanout: int = 3,
    ) -> None:
        super().__init__(node_id, simulator, network)
        self.system = system
        self.ledger = ledger
        self.delivery_log = delivery_log
        self.fanout = fanout
        self.subscribed_topics: Set[str] = set()
        #: Topics whose group this node belongs to (subscriptions + delegate duties).
        self.group_topics: Set[str] = set()
        self.seen_event_ids: Set[str] = set()
        self.delivered_event_ids: Set[str] = set()
        self._callbacks: List[DeliveryCallback] = []
        self.ledger.ensure_node(node_id)

    # ------------------------------------------------------------ user API

    def add_delivery_callback(self, callback: DeliveryCallback) -> None:
        """Register an application callback invoked on every delivery."""
        self._callbacks.append(callback)

    def subscribe_topic(self, topic: str) -> None:
        """Subscribe to a topic (joins its gossip group)."""
        if topic not in self.subscribed_topics:
            self.subscribed_topics.add(topic)
            self.ledger.record_subscribe(self.node_id)
        self.group_topics.add(topic)

    def unsubscribe_topic(self, topic: str) -> None:
        """Drop the subscription (delegate duties, if any, are kept)."""
        if topic in self.subscribed_topics:
            self.subscribed_topics.discard(topic)
            self.ledger.record_unsubscribe(self.node_id)
        if not self.system.is_delegate(self.node_id, topic):
            self.group_topics.discard(topic)

    def become_delegate(self, topic: str) -> None:
        """Join a group as a delegate (bridging duty, not interest)."""
        self.group_topics.add(topic)

    def publish(self, event: Event) -> None:
        """Publish an event into its topic group (via a delegate if needed)."""
        if not self.alive or event.topic is None:
            return
        self.ledger.record_publish(self.node_id)
        topic = event.topic
        if topic in self.group_topics:
            self._spread(topic, event, first_touch=True)
            return
        # Not a group member: hand the event to a delegate of the topic's root.
        delegate = self.system.delegate_for(topic, exclude=self.node_id)
        if delegate is None:
            return
        self.send(delegate, HANDOFF_KIND, payload=_GossipPayload(topic=topic, event=event), size=event.size)
        self.ledger.record_gossip_send(self.node_id, messages=1, events=1, size=event.size)

    # ------------------------------------------------------------- gossip

    def _spread(self, topic: str, event: Event, first_touch: bool) -> None:
        """Infect-and-die: deliver if interested, forward to random group members."""
        if event.event_id in self.seen_event_ids and not first_touch:
            return
        newly_seen = event.event_id not in self.seen_event_ids
        self.seen_event_ids.add(event.event_id)
        if topic in self.subscribed_topics:
            self._deliver(event)
        if not newly_seen and not first_touch:
            return
        members = self.system.group_members(topic)
        rng = self.simulator.rng.stream(f"dam:{self.node_id}")
        candidates = [member for member in members if member != self.node_id]
        if not candidates:
            return
        targets = candidates if self.fanout >= len(candidates) else rng.sample(candidates, self.fanout)
        payload = _GossipPayload(topic=topic, event=event)
        for target in targets:
            self.send(target, GROUP_GOSSIP_KIND, payload=payload, size=event.size)
        self.ledger.record_gossip_send(
            self.node_id, messages=len(targets), events=len(targets), size=event.size * len(targets)
        )

    def on_message(self, message: Message) -> None:
        if message.kind not in (GROUP_GOSSIP_KIND, HANDOFF_KIND):
            return
        payload: _GossipPayload = message.payload
        if message.kind == HANDOFF_KIND:
            # A publisher outside the group handed us the event to spread.
            self._spread(payload.topic, payload.event, first_touch=True)
        else:
            if payload.event.event_id in self.seen_event_ids:
                return
            self._spread(payload.topic, payload.event, first_touch=False)

    def _deliver(self, event: Event) -> None:
        if event.event_id in self.delivered_event_ids:
            return
        self.delivered_event_ids.add(event.event_id)
        self.ledger.record_delivery(self.node_id)
        self.delivery_log.record(self.node_id, event, delivered_at=self.simulator.now)
        for callback in self._callbacks:
            callback(self.node_id, event)

    def on_crash(self) -> None:
        self.ledger.record_crash(self.node_id)


class DataAwareMulticastSystem(DisseminationSystem):
    """Topic-hierarchy gossip groups with supertopic delegates."""

    name = "data-aware-multicast"

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        node_ids: Sequence[str],
        hierarchy: Optional[TopicHierarchy] = None,
        fanout: int = 3,
        delegates_per_root: int = 2,
        ledger: Optional[WorkLedger] = None,
        delivery_log: Optional[DeliveryLog] = None,
    ) -> None:
        if not node_ids:
            raise ValueError("a dam system needs at least one node")
        if delegates_per_root <= 0:
            raise ValueError("delegates_per_root must be positive")
        self.simulator = simulator
        self.network = network
        self.hierarchy = hierarchy if hierarchy is not None else TopicHierarchy()
        self.fanout = fanout
        self.delegates_per_root = delegates_per_root
        self.ledger = ledger if ledger is not None else WorkLedger()
        self._delivery_log = delivery_log if delivery_log is not None else DeliveryLog()
        self.subscriptions = SubscriptionTable()
        self.registry = ProcessRegistry()
        self.nodes: Dict[str, DamNode] = {}
        self._factories: Dict[str, EventFactory] = {}
        self._groups: Dict[str, Set[str]] = {}
        self._delegates: Dict[str, List[str]] = {}
        for node_id in node_ids:
            node = DamNode(
                node_id, simulator, network, self, self.ledger, self._delivery_log, fanout=fanout
            )
            node.start()
            self.nodes[node_id] = node
            self.registry.add(node)
            self._factories[node_id] = EventFactory(node_id)

    # ------------------------------------------------------------ grouping

    def group_members(self, topic: str) -> List[str]:
        """Current members of a topic's gossip group (subscribers + delegates)."""
        members = set(self._groups.get(topic, set()))
        root = topic_path(topic)[0]
        members.update(self._delegates.get(root, ()))
        return sorted(members)

    def is_delegate(self, node_id: str, topic: str) -> bool:
        """Whether ``node_id`` serves as a delegate covering ``topic``."""
        root = topic_path(topic)[0]
        return node_id in self._delegates.get(root, ())

    def delegate_for(self, topic: str, exclude: str = "") -> Optional[str]:
        """A delegate able to inject an event into ``topic``'s group."""
        root = topic_path(topic)[0]
        self._ensure_delegates(root)
        candidates = [node for node in self._delegates.get(root, ()) if node != exclude]
        if not candidates:
            return None
        rng = self.simulator.rng.stream("dam-delegates")
        return rng.choice(candidates)

    def _ensure_delegates(self, root: str) -> None:
        """Recruit delegates for a root topic's subtree if missing or dead."""
        existing = [
            node_id
            for node_id in self._delegates.get(root, ())
            if self.nodes[node_id].alive
        ]
        if len(existing) >= self.delegates_per_root:
            self._delegates[root] = existing
            return
        # Prefer subscribers anywhere in the subtree (they at least benefit
        # from part of the traffic), fall back to arbitrary nodes.
        subtree_topics = [root] + [topic.name for topic in self.hierarchy.descendants(root)] if root in self.hierarchy else [root]
        pool: List[str] = []
        for topic in subtree_topics:
            pool.extend(self._groups.get(topic, ()))
        if not pool:
            pool = sorted(self.nodes)
        rng = self.simulator.rng.stream("dam-delegates")
        unique_pool = sorted(set(pool) - set(existing))
        while len(existing) < self.delegates_per_root and unique_pool:
            pick = rng.choice(unique_pool)
            unique_pool.remove(pick)
            existing.append(pick)
        self._delegates[root] = existing
        # A delegate joins every group of the subtree it bridges.
        for node_id in existing:
            for topic in subtree_topics:
                self.nodes[node_id].become_delegate(topic)

    # ------------------------------------------------------------- §2 API

    def publish(self, publisher_id: str, event: Optional[Event] = None, **attributes) -> Event:
        if event is None:
            factory = self._factories[publisher_id]
            topic = attributes.pop("topic", None)
            size = attributes.pop("size", 1)
            event = factory.create(attributes=attributes, topic=topic, size=size)
        if event.topic is None:
            raise ValueError("data-aware multicast is topic-based: the event needs a topic")
        if event.topic not in self.hierarchy:
            self.hierarchy.add(event.topic)
        event = event.with_time(self.simulator.now)
        self._ensure_delegates(topic_path(event.topic)[0])
        self.nodes[publisher_id].publish(event)
        return event

    def subscribe(
        self,
        node_id: str,
        subscription_filter: Filter,
        callbacks: Sequence[DeliveryCallback] = (),
    ) -> None:
        if not isinstance(subscription_filter, TopicFilter):
            raise TypeError("data-aware multicast supports topic-based subscriptions only")
        topic = subscription_filter.topic
        if topic not in self.hierarchy:
            self.hierarchy.add(topic)
        node = self.nodes[node_id]
        node.subscribe_topic(topic)
        self._groups.setdefault(topic, set()).add(node_id)
        self.subscriptions.subscribe(node_id, subscription_filter, timestamp=self.simulator.now)
        for callback in callbacks:
            node.add_delivery_callback(callback)

    def unsubscribe(self, node_id: str, subscription_filter: Filter) -> None:
        if not isinstance(subscription_filter, TopicFilter):
            raise TypeError("data-aware multicast supports topic-based subscriptions only")
        topic = subscription_filter.topic
        self.nodes[node_id].unsubscribe_topic(topic)
        if not self.is_delegate(node_id, topic):
            self._groups.get(topic, set()).discard(node_id)
        self.subscriptions.unsubscribe(node_id, subscription_filter, timestamp=self.simulator.now)

    # -------------------------------------------------------------- queries

    @property
    def delivery_log(self) -> DeliveryLog:
        return self._delivery_log

    def node_ids(self) -> List[str]:
        return sorted(self.nodes)

    def node(self, node_id: str) -> DamNode:
        """Return the node object for ``node_id``."""
        return self.nodes[node_id]

    def delegates(self) -> Dict[str, List[str]]:
        """Current delegates per root topic."""
        return {root: list(nodes) for root, nodes in self._delegates.items()}

    def run(self, until: float) -> None:
        """Advance the simulation to time ``until``."""
        self.simulator.run(until=until)
